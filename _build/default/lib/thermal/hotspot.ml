let default_ambient = 35.
let default_leak_beta = 0.05

let network_of_floorplan ?(lateral_scale = 1.) ?(vertical_scale = 1.)
    ?(capacitance_scale = 1.) fp =
  if lateral_scale < 0. || vertical_scale <= 0. || capacitance_scale <= 0. then
    invalid_arg "Hotspot.network_of_floorplan: non-positive scale";
  let net = Rc_network.create () in
  let n = Floorplan.n_blocks fp in
  let idx =
    Array.init n (fun i ->
        let b = fp.Floorplan.blocks.(i) in
        let area = Floorplan.area b in
        let capacitance = capacitance_scale *. area *. Material.lumped_capacitance_area in
        let to_ambient =
          vertical_scale
          *.
          if b.Floorplan.layer = 0 then
            (area /. Material.lumped_vertical_resistance_area)
            +. (Floorplan.exposed_perimeter fp i *. Material.perimeter_conductance)
          else
            (* Stacked dies reach ambient only weakly through the lid. *)
            area /. (10. *. Material.lumped_vertical_resistance_area)
        in
        Rc_network.add_node net ~name:b.Floorplan.name ~capacitance ~to_ambient)
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let bi = fp.Floorplan.blocks.(i) and bj = fp.Floorplan.blocks.(j) in
      let edge = Floorplan.shared_edge bi bj in
      if edge > 0. then
        Rc_network.connect net idx.(i) idx.(j)
          (lateral_scale *. edge *. Material.lateral_conductance_per_metre);
      let overlap = Floorplan.overlap_area bi bj in
      if overlap > 0. then
        Rc_network.connect net idx.(i) idx.(j)
          (overlap /. Material.interlayer_resistance_area)
    done
  done;
  net

let core_level ?(ambient = default_ambient) ?(leak_beta = default_leak_beta)
    ?lateral_scale ?vertical_scale ?capacitance_scale fp =
  let net = network_of_floorplan ?lateral_scale ?vertical_scale ?capacitance_scale fp in
  Model.make ~ambient ~leak_beta
    ~capacitance:(Rc_network.capacitance_vector net)
    ~conductance:(Rc_network.conductance_matrix net)
    ~core_nodes:(Array.init (Floorplan.n_blocks fp) (fun i -> i))
    ()

let layered ?(ambient = default_ambient) ?(leak_beta = default_leak_beta) fp =
  let net = Rc_network.create () in
  let n = Floorplan.n_blocks fp in
  let die_thermal_capacitance area =
    area *. Material.die_thickness *. Material.silicon.Material.volumetric_heat
  in
  let cores =
    Array.init n (fun i ->
        let b = fp.Floorplan.blocks.(i) in
        Rc_network.add_node net ~name:b.Floorplan.name
          ~capacitance:(die_thermal_capacitance (Floorplan.area b))
          ~to_ambient:0.)
  in
  (* Per-core spreader node: copper slab patch above the core. *)
  let spreaders =
    Array.init n (fun i ->
        let b = fp.Floorplan.blocks.(i) in
        let area = Floorplan.area b in
        Rc_network.add_node net
          ~name:(b.Floorplan.name ^ "_sp")
          ~capacitance:
            (area *. Material.spreader_thickness
            *. Material.copper.Material.volumetric_heat)
          ~to_ambient:0.)
  in
  (* One shared heat-sink node grounding the package. *)
  let total_area =
    Array.fold_left (fun acc b -> acc +. Floorplan.area b) 0. fp.Floorplan.blocks
  in
  let sink =
    Rc_network.add_node net ~name:"sink" ~capacitance:(total_area *. 4.0e5)
      ~to_ambient:(total_area /. (0.25 *. Material.lumped_vertical_resistance_area))
  in
  (* TIM resistance per unit area: thickness / conductivity. *)
  let tim_resistance_area = 20.0e-6 /. Material.interface.Material.conductivity in
  for i = 0 to n - 1 do
    let b = fp.Floorplan.blocks.(i) in
    let area = Floorplan.area b in
    Rc_network.connect net cores.(i) spreaders.(i) (area /. tim_resistance_area);
    Rc_network.connect net spreaders.(i) sink
      (area /. (0.45 *. Material.lumped_vertical_resistance_area));
    Rc_network.add_to_ambient net spreaders.(i)
      (Floorplan.exposed_perimeter fp i *. Material.perimeter_conductance)
  done;
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let bi = fp.Floorplan.blocks.(i) and bj = fp.Floorplan.blocks.(j) in
      let edge = Floorplan.shared_edge bi bj in
      if edge > 0. then begin
        (* Silicon lateral path between dies and copper path between
           spreader patches. *)
        Rc_network.connect net cores.(i) cores.(j)
          (edge *. Material.die_thickness *. Material.silicon.Material.conductivity
          /. bi.Floorplan.width);
        Rc_network.connect net spreaders.(i) spreaders.(j)
          (edge *. Material.lateral_conductance_per_metre)
      end;
      let overlap = Floorplan.overlap_area bi bj in
      if overlap > 0. then
        Rc_network.connect net cores.(i) cores.(j)
          (overlap /. Material.interlayer_resistance_area)
    done
  done;
  ignore sink;
  Model.make ~ambient ~leak_beta
    ~capacitance:(Rc_network.capacitance_vector net)
    ~conductance:(Rc_network.conductance_matrix net)
    ~core_nodes:cores ()
