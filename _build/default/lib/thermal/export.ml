module Mat = Linalg.Mat

let matrix_to_csv m =
  let b = Buffer.create 1024 in
  let rows, cols = Mat.dims m in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      if j > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "%.17g" (Mat.get m i j))
    done;
    Buffer.add_char b '\n'
  done;
  Buffer.contents b

let write_file path text =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text)

let write_model ~dir ~prefix model =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let path name = Filename.concat dir (prefix ^ "_" ^ name ^ ".csv") in
  let a_path = path "A" in
  write_file a_path (matrix_to_csv (Model.a_matrix model));
  let eig_path = path "eigenvalues" in
  write_file eig_path
    (String.concat "\n"
       (Array.to_list (Array.map (Printf.sprintf "%.17g") (Model.eigenvalues model)))
    ^ "\n");
  let n = Model.n_cores model in
  let offset = Model.steady_core_temps model (Array.make n 0.) in
  let unit_response i =
    let unit = Array.make n 0. in
    unit.(i) <- 1.;
    let temps = Model.steady_core_temps model unit in
    Array.mapi (fun j t -> t -. offset.(j)) temps
  in
  let rows = Array.init n unit_response in
  let response =
    Mat.init (n + 1) n (fun i j -> if i = 0 then offset.(j) else rows.(i - 1).(j))
  in
  let resp_path = path "response" in
  write_file resp_path (matrix_to_csv response);
  [ a_path; eig_path; resp_path ]
