type block = {
  name : string;
  layer : int;
  x : float;
  y : float;
  width : float;
  height : float;
}

type t = { blocks : block array }

let area b = b.width *. b.height

let check_positive name v = if v <= 0. then invalid_arg ("Floorplan: non-positive " ^ name)

let grid_blocks ~layer ~prefix ~rows ~cols ~core_width ~core_height =
  if rows <= 0 || cols <= 0 then invalid_arg "Floorplan.grid: non-positive grid size";
  check_positive "core_width" core_width;
  check_positive "core_height" core_height;
  Array.init (rows * cols) (fun k ->
      let r = k / cols and c = k mod cols in
      {
        name = Printf.sprintf "%s%d_%d" prefix r c;
        layer;
        x = float_of_int c *. core_width;
        y = float_of_int r *. core_height;
        width = core_width;
        height = core_height;
      })

let grid ~rows ~cols ~core_width ~core_height =
  { blocks = grid_blocks ~layer:0 ~prefix:"core_" ~rows ~cols ~core_width ~core_height }

let stack3d ~layers ~rows ~cols ~core_width ~core_height =
  if layers <= 0 then invalid_arg "Floorplan.stack3d: non-positive layer count";
  let layer_blocks l =
    grid_blocks ~layer:l
      ~prefix:(Printf.sprintf "core_%d_" l)
      ~rows ~cols ~core_width ~core_height
  in
  { blocks = Array.concat (List.init layers layer_blocks) }

(* Length of the overlap of 1D segments [a0,a1] and [b0,b1]. *)
let segment_overlap a0 a1 b0 b1 = Float.max 0. (Float.min a1 b1 -. Float.max a0 b0)

let touching x y = Float.abs (x -. y) < 1e-12

let shared_edge a b =
  if a.layer <> b.layer then 0.
  else if touching (a.x +. a.width) b.x || touching (b.x +. b.width) a.x then
    (* Vertical common edge: overlap in y. *)
    segment_overlap a.y (a.y +. a.height) b.y (b.y +. b.height)
  else if touching (a.y +. a.height) b.y || touching (b.y +. b.height) a.y then
    (* Horizontal common edge: overlap in x. *)
    segment_overlap a.x (a.x +. a.width) b.x (b.x +. b.width)
  else 0.

let overlap_area a b =
  if abs (a.layer - b.layer) <> 1 then 0.
  else
    segment_overlap a.x (a.x +. a.width) b.x (b.x +. b.width)
    *. segment_overlap a.y (a.y +. a.height) b.y (b.y +. b.height)

let exposed_perimeter fp i =
  let b = fp.blocks.(i) in
  let total = 2. *. (b.width +. b.height) in
  let shared =
    Array.to_seq fp.blocks
    |> Seq.mapi (fun j other -> if j = i then 0. else shared_edge b other)
    |> Seq.fold_left ( +. ) 0.
  in
  Float.max 0. (total -. shared)

let n_blocks fp = Array.length fp.blocks

let pp fmt fp =
  Array.iter
    (fun b ->
      Format.fprintf fmt "%-12s layer %d  at (%.1f, %.1f) mm  %.1f x %.1f mm@."
        b.name b.layer (b.x *. 1e3) (b.y *. 1e3) (b.width *. 1e3) (b.height *. 1e3))
    fp.blocks
