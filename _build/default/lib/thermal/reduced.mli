(** Modal order reduction of the compact thermal model.

    Fine-grid models ({!Grid_model}) grow quadratically in node count;
    most of their eigenmodes decay within microseconds and contribute
    nothing to schedule-scale dynamics.  This module truncates the modal
    expansion to the [k] slowest modes and patches the lost modes'
    steady-state contribution with a static correction — the standard
    modal-truncation + static-correction scheme:

    [theta(t) ~ W_k z(t) + (G'^{-1} - W_k diag(1/|lambda_k|) W_k^T C) u]

    where [z] evolves independently per retained mode.  Accuracy is
    exact at steady state by construction and degrades only for inputs
    changing faster than the fastest retained mode. *)

type t

(** [build ?modes model] retains the [modes] slowest eigenmodes (default
    : enough to cover the slowest decade of time constants, at least 4).
    Raises [Invalid_argument] if [modes] is not in [1, n_nodes]. *)
val build : ?modes:int -> Model.t -> t

(** [n_modes r] is the retained mode count. *)
val n_modes : t -> int

(** [full_model r] is the model the reduction was built from. *)
val full_model : t -> Model.t

(** [steady_core_temps r psi] — exact (the static correction makes the
    reduction lossless at DC). *)
val steady_core_temps : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [step r ~dt ~state ~psi] advances the reduced modal state one exact
    step under constant core powers.  The state is opaque; start from
    {!ambient_state}. *)
val step : t -> dt:float -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t

(** [ambient_state r] is the modal state corresponding to every node at
    the ambient temperature. *)
val ambient_state : t -> Linalg.Vec.t

(** [core_temps r ~state ~psi] reconstructs absolute core temperatures
    from the modal state (the static correction needs the current input
    [psi]). *)
val core_temps : t -> state:Linalg.Vec.t -> psi:Linalg.Vec.t -> Linalg.Vec.t
