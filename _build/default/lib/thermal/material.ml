type t = { name : string; conductivity : float; volumetric_heat : float }

let silicon = { name = "silicon"; conductivity = 100.; volumetric_heat = 1.75e6 }
let copper = { name = "copper"; conductivity = 400.; volumetric_heat = 3.55e6 }
let interface = { name = "TIM"; conductivity = 4.; volumetric_heat = 4.0e6 }
let die_thickness = 0.15e-3
let spreader_thickness = 1.0e-3

(* Calibration (see DESIGN.md section 5): a 4x4 mm^2 core has
   g_vertical = area / r_area = 16e-6 / 32e-6 = 0.5 W/K and
   c = area * c_area = 16e-6 * 7800 = 0.125 J/K, giving the ~0.25 s
   dominant time constant visible in the paper's Fig. 2/Fig. 4 traces. *)
let lumped_vertical_resistance_area = 32.0e-6
let lumped_capacitance_area = 7800.
let perimeter_conductance = 15.
let lateral_conductance_per_metre = 75.
let interlayer_resistance_area = 8.0e-6
