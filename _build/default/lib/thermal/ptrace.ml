type t = { names : string array; samples : float array array }

exception Parse_error of int * string

let error line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let fields line =
  String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
  |> List.filter (fun f -> f <> "")

let of_string text =
  let lines =
    String.split_on_char '\n' text
    |> List.mapi (fun i l -> (i + 1, l))
    |> List.filter (fun (_, l) -> String.trim l <> "")
  in
  match lines with
  | [] -> raise (Parse_error (0, "empty trace"))
  | (header_line, header) :: body ->
      let names = Array.of_list (fields header) in
      if Array.length names = 0 then error header_line "empty header";
      let parse_row (lineno, line) =
        let cells = fields line in
        if List.length cells <> Array.length names then
          error lineno "row has %d cells, header has %d columns" (List.length cells)
            (Array.length names);
        Array.of_list
          (List.map
             (fun c ->
               match float_of_string_opt c with
               | Some v -> v
               | None -> error lineno "not a number: %S" c)
             cells)
      in
      if body = [] then error header_line "trace has a header but no samples";
      { names; samples = Array.of_list (List.map parse_row body) }

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let to_string t =
  let buffer = Buffer.create 1024 in
  Buffer.add_string buffer (String.concat "\t" (Array.to_list t.names));
  Buffer.add_char buffer '\n';
  Array.iter
    (fun row ->
      Buffer.add_string buffer
        (String.concat "\t" (Array.to_list (Array.map (Printf.sprintf "%.6g") row)));
      Buffer.add_char buffer '\n')
    t.samples;
  Buffer.contents buffer

let to_file path t =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let columns_for_model t model_names =
  let index name = Array.find_index (fun n -> n = name) t.names in
  let missing = ref [] in
  let map =
    Array.map
      (fun name ->
        match index name with
        | Some i -> i
        | None ->
            missing := name :: !missing;
            -1)
      model_names
  in
  if !missing <> [] then
    failwith
      (Printf.sprintf "Ptrace.columns_for_model: trace lacks unit(s): %s"
         (String.concat ", " (List.rev !missing)));
  map

let replay model t ~interval ~column_map =
  if interval <= 0. then invalid_arg "Ptrace.replay: non-positive interval";
  if Array.length column_map <> Model.n_cores model then
    invalid_arg "Ptrace.replay: column map arity differs from model cores";
  let theta = ref (Array.make (Model.n_nodes model) 0.) in
  let out =
    Array.make
      (Array.length t.samples + 1)
      { Trace.time = 0.; core_temps = Model.core_temps_of_theta model !theta }
  in
  Array.iteri
    (fun k row ->
      let psi = Array.map (fun col -> row.(col)) column_map in
      theta := Model.step model ~dt:interval ~theta:!theta ~psi;
      out.(k + 1) <-
        {
          Trace.time = float_of_int (k + 1) *. interval;
          core_temps = Model.core_temps_of_theta model !theta;
        })
    t.samples;
  out
