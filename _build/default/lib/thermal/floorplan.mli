(** Core-level floorplans.

    A floorplan is a set of rectangular blocks, each on a layer (layer 0
    is the die attached to the package; higher layers model 3D-stacked
    dies).  The builder in {!Hotspot} turns adjacency information from the
    floorplan into lateral/vertical RC-network conductances. *)

type block = {
  name : string;
  layer : int;  (** 0 = bottom die (package-attached). *)
  x : float;  (** Lower-left corner, m. *)
  y : float;
  width : float;  (** m *)
  height : float;  (** m *)
}

type t = { blocks : block array }

(** [area b] is [width * height] in m^2. *)
val area : block -> float

(** [grid ~rows ~cols ~core_width ~core_height] is a single-layer
    [rows x cols] mesh of identical cores named ["core_<r>_<c>"], packed
    edge to edge.  The paper's platforms are [grid 1 2], [grid 1 3],
    [grid 2 3] and [grid 3 3] with 4x4 mm^2 cores.  Raises
    [Invalid_argument] on non-positive dimensions. *)
val grid : rows:int -> cols:int -> core_width:float -> core_height:float -> t

(** [stack3d ~layers ~rows ~cols ~core_width ~core_height] piles [layers]
    copies of the grid vertically (names ["core_<l>_<r>_<c>"]) — the 3D
    configuration the paper's introduction motivates. *)
val stack3d :
  layers:int -> rows:int -> cols:int -> core_width:float -> core_height:float -> t

(** [shared_edge a b] is the length (m) of the common boundary between two
    same-layer blocks, 0 if they do not touch or lie on different
    layers. *)
val shared_edge : block -> block -> float

(** [overlap_area a b] is the overlap area (m^2) of the footprints of two
    blocks on *adjacent* layers ([abs (layer a - layer b) = 1]), 0
    otherwise. *)
val overlap_area : block -> block -> float

(** [exposed_perimeter fp i] is the perimeter length (m) of block [i] not
    shared with any same-layer neighbour — the boundary facing the
    spreader overhang. *)
val exposed_perimeter : t -> int -> float

(** [n_blocks fp] is the number of blocks. *)
val n_blocks : t -> int

(** [pp] prints a one-line-per-block summary. *)
val pp : Format.formatter -> t -> unit
