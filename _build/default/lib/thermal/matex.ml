module Mat = Linalg.Mat
module Vec = Linalg.Vec

type segment = { duration : float; psi : Vec.t }
type profile = segment list

let period profile = List.fold_left (fun acc s -> acc +. s.duration) 0. profile

let validate model profile =
  if profile = [] then invalid_arg "Matex: empty profile";
  List.iteri
    (fun q s ->
      if s.duration <= 0. then
        invalid_arg (Printf.sprintf "Matex: segment %d has non-positive duration" q);
      if Vec.dim s.psi <> Model.n_cores model then
        invalid_arg
          (Printf.sprintf "Matex: segment %d power vector has arity %d, expected %d" q
             (Vec.dim s.psi) (Model.n_cores model)))
    profile

let simulate model ~theta0 profile =
  validate model profile;
  let states = Array.make (List.length profile + 1) theta0 in
  List.iteri
    (fun q s ->
      states.(q + 1) <- Model.step model ~dt:s.duration ~theta:states.(q) ~psi:s.psi)
    profile;
  states

let stable_start model profile =
  validate model profile;
  let n = Model.n_nodes model in
  (* One period from the zero state gives theta(t_p) = K*0 + d = d, and
     K is the ordered product of segment propagators. *)
  let d = ref (Vec.zeros n) in
  let k = ref (Mat.identity n) in
  List.iter
    (fun s ->
      let p = Model.propagator model s.duration in
      d := Model.step model ~dt:s.duration ~theta:!d ~psi:s.psi;
      k := Mat.matmul p !k)
    profile;
  (* Stable status: theta* = K theta* + d. *)
  let i_minus_k = Mat.sub (Mat.identity n) !k in
  Linalg.Lu.solve i_minus_k !d

let stable_boundaries model profile =
  let theta0 = stable_start model profile in
  simulate model ~theta0 profile

let peak_at_boundaries model profile =
  Array.fold_left
    (fun acc theta -> Float.max acc (Model.max_core_temp model theta))
    neg_infinity
    (stable_boundaries model profile)

let end_of_period_peak model profile =
  Model.max_core_temp model (stable_start model profile)

let scan_segment model ~samples theta s visit =
  let dt = s.duration /. float_of_int samples in
  let theta = ref theta in
  for k = 1 to samples do
    theta := Model.step model ~dt ~theta:!theta ~psi:s.psi;
    visit (float_of_int k *. dt) !theta
  done;
  !theta

let peak_scan model ?(samples_per_segment = 32) profile =
  let boundaries = stable_boundaries model profile in
  let best = ref (Model.max_core_temp model boundaries.(0)) in
  List.iteri
    (fun q s ->
      ignore
        (scan_segment model ~samples:samples_per_segment boundaries.(q) s
           (fun _ theta -> best := Float.max !best (Model.max_core_temp model theta))))
    profile;
  !best

let stable_core_trace model ~samples_per_segment profile =
  let boundaries = stable_boundaries model profile in
  let samples = ref [ (0., Model.core_temps_of_theta model boundaries.(0)) ] in
  let t_start = ref 0. in
  List.iteri
    (fun q s ->
      ignore
        (scan_segment model ~samples:samples_per_segment boundaries.(q) s
           (fun dt theta ->
             samples :=
               (!t_start +. dt, Model.core_temps_of_theta model theta) :: !samples));
      t_start := !t_start +. s.duration)
    profile;
  Array.of_list (List.rev !samples)

let golden = (sqrt 5. -. 1.) /. 2.

(* Maximize f over [a, b] by golden-section search (f unimodal on the
   bracket around a sampled maximum; if it is not, the result is still a
   lower bound no worse than the sampled one). *)
let golden_max f a b tol =
  let rec go a b x1 x2 f1 f2 =
    if b -. a < tol then Float.max f1 f2
    else if f1 >= f2 then
      (* The maximum lies in [a, x2]. *)
      let b = x2 in
      let x2 = x1 and f2 = f1 in
      let x1 = b -. (golden *. (b -. a)) in
      go a b x1 x2 (f x1) f2
    else
      (* The maximum lies in [x1, b]. *)
      let a = x1 in
      let x1 = x2 and f1 = f2 in
      let x2 = a +. (golden *. (b -. a)) in
      go a b x1 x2 f1 (f x2)
  in
  let x1 = b -. (golden *. (b -. a)) in
  let x2 = a +. (golden *. (b -. a)) in
  go a b x1 x2 (f x1) (f x2)

let peak_refined model ?(samples_per_segment = 32) ?(tol = 1e-4) profile =
  let boundaries = stable_boundaries model profile in
  let best = ref (Model.max_core_temp model boundaries.(0)) in
  List.iteri
    (fun q s ->
      (* Dense scan of this segment, remembering the hottest sample. *)
      let dt = s.duration /. float_of_int samples_per_segment in
      let best_k = ref 0 and best_here = ref (Model.max_core_temp model boundaries.(q)) in
      ignore
        (scan_segment model ~samples:samples_per_segment boundaries.(q) s
           (fun t theta ->
             let temp = Model.max_core_temp model theta in
             if temp > !best_here then begin
               best_here := temp;
               best_k := int_of_float (Float.round (t /. dt))
             end));
      best := Float.max !best !best_here;
      (* Refine inside the bracketing interval around the best sample. *)
      let lo = Float.max 0. ((float_of_int !best_k -. 1.) *. dt) in
      let hi = Float.min s.duration ((float_of_int !best_k +. 1.) *. dt) in
      if hi > lo then begin
        let temp_at t =
          Model.max_core_temp model
            (Model.step model ~dt:t ~theta:boundaries.(q) ~psi:s.psi)
        in
        best := Float.max !best (golden_max temp_at lo hi (tol *. s.duration))
      end)
    profile;
  !best

let time_to_threshold model ?theta0 ?(max_periods = 1000) ?(samples_per_segment = 32)
    ~threshold profile =
  validate model profile;
  let theta0 =
    match theta0 with Some t -> Vec.copy t | None -> Vec.zeros (Model.n_nodes model)
  in
  let hot theta = Model.max_core_temp model theta in
  if hot theta0 >= threshold then Some 0.
  else begin
    (* Bisect the crossing inside [t_lo, t_hi] from the segment-start
       state [base] under constant power [psi]. *)
    let refine base psi t_lo t_hi =
      let rec go t_lo t_hi iters =
        if iters = 0 || t_hi -. t_lo < 1e-9 *. Float.max 1e-3 t_hi then t_hi
        else
          let mid = (t_lo +. t_hi) /. 2. in
          if hot (Model.step model ~dt:mid ~theta:base ~psi) >= threshold then
            go t_lo mid (iters - 1)
          else go mid t_hi (iters - 1)
      in
      go t_lo t_hi 50
    in
    let exception Crossed of float in
    try
      let theta = ref theta0 in
      let elapsed = ref 0. in
      for _ = 1 to max_periods do
        List.iter
          (fun s ->
            let dt = s.duration /. float_of_int samples_per_segment in
            let base = !theta in
            (* Scan this segment for the first sample above threshold. *)
            let rec scan k prev_t =
              if k > samples_per_segment then ()
              else begin
                let t = float_of_int k *. dt in
                if hot (Model.step model ~dt:t ~theta:base ~psi:s.psi) >= threshold
                then raise (Crossed (!elapsed +. refine base s.psi prev_t t))
                else scan (k + 1) t
              end
            in
            scan 1 0.;
            theta := Model.step model ~dt:s.duration ~theta:base ~psi:s.psi;
            elapsed := !elapsed +. s.duration)
          profile
      done;
      None
    with Crossed t -> Some t
  end

let mission_peak model ?theta0 ?(samples_per_segment = 32) profile =
  validate model profile;
  let theta0 =
    match theta0 with Some t -> Vec.copy t | None -> Vec.zeros (Model.n_nodes model)
  in
  let best = ref (Model.max_core_temp model theta0) in
  let theta = ref theta0 in
  List.iter
    (fun s ->
      theta :=
        scan_segment model ~samples:samples_per_segment !theta s (fun _ state ->
            best := Float.max !best (Model.max_core_temp model state)))
    profile;
  (!best, !theta)
