exception Parse_error of int * string

let error line fmt = Printf.ksprintf (fun msg -> raise (Parse_error (line, msg))) fmt

let is_blank s = String.trim s = ""
let is_comment s = String.length (String.trim s) > 0 && (String.trim s).[0] = '#'

let parse_line lineno line =
  let fields =
    String.split_on_char ' ' (String.map (function '\t' -> ' ' | c -> c) line)
    |> List.filter (fun f -> f <> "")
  in
  match fields with
  | name :: width :: height :: x :: y :: rest ->
      if List.length rest > 2 then error lineno "too many columns (%d)" (List.length fields);
      let num what s =
        match float_of_string_opt s with
        | Some v -> v
        | None -> error lineno "%s is not a number: %S" what s
      in
      let width = num "width" width and height = num "height" height in
      let x = num "left-x" x and y = num "bottom-y" y in
      if width <= 0. || height <= 0. then
        error lineno "unit %s has non-positive dimensions" name;
      { Floorplan.name; layer = 0; x; y; width; height }
  | _ -> error lineno "expected at least 5 columns, got %d" (List.length fields)

let of_string text =
  let lines = String.split_on_char '\n' text in
  let blocks =
    List.filteri (fun _ _ -> true) lines
    |> List.mapi (fun i line -> (i + 1, line))
    |> List.filter (fun (_, line) -> not (is_blank line || is_comment line))
    |> List.map (fun (lineno, line) -> (lineno, parse_line lineno line))
  in
  if blocks = [] then raise (Parse_error (0, "no units in floorplan"));
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (lineno, b) ->
      if Hashtbl.mem seen b.Floorplan.name then
        error lineno "duplicate unit name %s" b.Floorplan.name;
      Hashtbl.add seen b.Floorplan.name ())
    blocks;
  { Floorplan.blocks = Array.of_list (List.map snd blocks) }

let of_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> of_string (In_channel.input_all ic))

let to_string fp =
  let buffer = Buffer.create 256 in
  Buffer.add_string buffer "# <unit-name> <width> <height> <left-x> <bottom-y>\n";
  Array.iter
    (fun b ->
      if b.Floorplan.layer <> 0 then
        invalid_arg "Flp.to_string: stacked floorplans have no .flp representation";
      Buffer.add_string buffer
        (Printf.sprintf "%s\t%.17g\t%.17g\t%.17g\t%.17g\n" b.Floorplan.name
           b.Floorplan.width b.Floorplan.height b.Floorplan.x b.Floorplan.y))
    fp.Floorplan.blocks;
  Buffer.contents buffer

let to_file path fp =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string fp))
