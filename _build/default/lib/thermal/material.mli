(** Thermal material properties used by the compact-model builder.

    Conductivities and volumetric heat capacities follow the HotSpot-5.02
    defaults at the 65 nm node the paper adopts.  The [lumped_*] constants
    fold the package layers the paper abstracts away (TIM, heat spreader,
    heat sink, convection) into effective per-area values so that a
    core-level model reproduces the paper's temperature scale and
    second-scale thermal time constants. *)

type t = {
  name : string;
  conductivity : float;  (** Thermal conductivity, W/(m*K). *)
  volumetric_heat : float;  (** Volumetric heat capacity, J/(m^3*K). *)
}

val silicon : t
(** Bulk silicon: 100 W/(m*K), 1.75e6 J/(m^3*K) (HotSpot defaults). *)

val copper : t
(** Copper heat spreader: 400 W/(m*K), 3.55e6 J/(m^3*K). *)

val interface : t
(** Thermal interface material: 4 W/(m*K), 4e6 J/(m^3*K). *)

val die_thickness : float
(** Silicon die thickness, m (HotSpot default 0.15 mm). *)

val spreader_thickness : float
(** Heat-spreader thickness, m (HotSpot default 1 mm). *)

val lumped_vertical_resistance_area : float
(** Effective vertical (junction-to-ambient) thermal resistance per unit
    area, K*m^2/W, lumping TIM + spreader + sink + convection.  Calibrated
    so that a 4x4 mm^2 core dissipating its peak-voltage power settles
    roughly 45-50 K above ambient, matching the paper's Fig. 3 scale. *)

val lumped_capacitance_area : float
(** Effective heat capacity per unit area, J/(K*m^2), lumping the die with
    the package mass that follows the core temperature on the paper's
    100 ms - 10 s schedule horizons. *)

val perimeter_conductance : float
(** Extra conductance to ambient per metre of floorplan-exposed block
    perimeter, W/(K*m).  Models the spreader area beyond the chip edge;
    this is what makes edge cores in a row run cooler than middle cores,
    reproducing the heterogeneous ideal voltages of the paper's
    Section III example. *)

val lateral_conductance_per_metre : float
(** Core-to-core lateral conductance per metre of shared edge, W/(K*m),
    lumping silicon plus spreader spreading paths.  Determines how much a
    hot core heats its neighbours (the paper's "heat interference"). *)

val interlayer_resistance_area : float
(** Vertical resistance per unit overlap area between two stacked dies in
    a 3D configuration, K*m^2/W (through-silicon bonding layer). *)
