(** HotSpot [.ptrace] power traces.

    Whitespace-separated text: a header line naming the units, then one
    line per sampling interval with that many power values (watts).
    Combined with a {!Model} and a sampling interval, a trace drives the
    exact LTI stepper to produce a temperature trace — the classic
    HotSpot workflow, reproduced so externally-generated workloads can
    be replayed. *)

type t = {
  names : string array;  (** Column order. *)
  samples : float array array;  (** [samples.(k).(i)] = power of unit [i]
                                    during interval [k], W. *)
}

exception Parse_error of int * string

(** [of_string text] parses a trace.  Raises {!Parse_error} on ragged
    rows, non-numeric cells or an empty body. *)
val of_string : string -> t

(** [of_file path] reads and parses a [.ptrace] file. *)
val of_file : string -> t

(** [to_string t] renders back to the HotSpot format. *)
val to_string : t -> string

(** [to_file path t] writes {!to_string} to [path]. *)
val to_file : string -> t -> unit

(** [columns_for_model t model_names] maps the trace's columns onto the
    model's core order by name, returning for each model core the trace
    column index.  Raises [Failure] listing any model core missing from
    the trace. *)
val columns_for_model : t -> string array -> int array

(** [replay model t ~interval ~column_map] steps the model from ambient
    through the whole trace ([interval] seconds per sample row) and
    returns the absolute core-temperature trace, one entry per row
    boundary (first entry = ambient). *)
val replay :
  Model.t -> t -> interval:float -> column_map:int array -> Trace.sample array
