(** Matrix export for external tooling.

    The paper's authors worked in MATLAB; researchers comparing against
    this implementation will want the exact [A], [C], [G] matrices and
    the steady-state response map this library computes.  This module
    writes them in plain CSV (one matrix per file) so
    [readmatrix]/[numpy.loadtxt] ingest them directly. *)

(** [matrix_to_csv m] renders a matrix as CSV text ([%.17g], exact
    round trip through decimal). *)
val matrix_to_csv : Linalg.Mat.t -> string

(** [write_model ~dir ~prefix model] writes

    - [<prefix>_A.csv] — the state matrix [A = -C^{-1}(G - beta E)];
    - [<prefix>_eigenvalues.csv] — its eigenvalues (one column);
    - [<prefix>_response.csv] — the steady-state map: column [j] is the
      absolute core-temperature response to 1 W on core [j], first row
      is the zero-power offset.

    Creates [dir] if needed; returns the list of paths written. *)
val write_model : dir:string -> prefix:string -> Model.t -> string list
