module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = {
  model : Model.t;
  modes : int array; (* indices of retained (slowest) modes *)
  lambda : Vec.t; (* retained eigenvalues *)
  w_cols : Mat.t; (* n_nodes x k columns of W for retained modes *)
  w_inv_rows : Mat.t; (* k x n_nodes rows of W^{-1} *)
}

let default_modes lambda =
  (* Retain everything within one decade of the slowest mode (index 0:
     the eigenvalues come ordered closest-to-zero first). *)
  let n = Vec.dim lambda in
  let slowest = Float.abs lambda.(0) in
  let count = ref 0 in
  for j = 0 to n - 1 do
    if Float.abs lambda.(j) <= 10. *. slowest then incr count
  done;
  Stdlib.max 4 !count |> Stdlib.min n

let build ?modes model =
  let lambda_all, w, w_inv = Model.eigenbasis model in
  let n = Vec.dim lambda_all in
  let k = match modes with Some k -> k | None -> default_modes lambda_all in
  if k < 1 || k > n then invalid_arg "Reduced.build: modes outside [1, n_nodes]";
  (* Eigenvalues come ordered closest-to-zero first (lambda = -mu with mu
     ascending), so the slowest modes are the FIRST k. *)
  let idx = Array.init k (fun j -> j) in
  ignore n;
  {
    model;
    modes = idx;
    lambda = Array.map (fun j -> lambda_all.(j)) idx;
    w_cols = Mat.init n k (fun i j -> Mat.get w i idx.(j));
    w_inv_rows = Mat.init k n (fun i j -> Mat.get w_inv idx.(i) j);
  }

let n_modes r = Array.length r.modes
let full_model r = r.model
let steady_core_temps r psi = Model.steady_core_temps r.model psi
let ambient_state r = Vec.zeros (n_modes r)

(* Retained modes' equilibrium coordinates for input psi:
   z_inf_j = -(W^{-1} b)_j / lambda_j. *)
let z_inf r psi =
  let b = Model.input_of_core_powers r.model psi in
  let wb = Mat.matvec r.w_inv_rows b in
  Array.mapi (fun j v -> -.v /. r.lambda.(j)) wb

let step r ~dt ~state ~psi =
  if Vec.dim state <> n_modes r then invalid_arg "Reduced.step: bad state arity";
  let zi = z_inf r psi in
  Array.mapi
    (fun j z -> zi.(j) +. (exp (r.lambda.(j) *. dt) *. (z -. zi.(j))))
    state

let core_temps r ~state ~psi =
  if Vec.dim state <> n_modes r then invalid_arg "Reduced.core_temps: bad state arity";
  (* theta(t) = theta_inf + W_k (z - z_inf): exact at DC, modal for the
     retained dynamics, quasi-static for the truncated fast modes. *)
  let theta_inf = Model.theta_inf r.model psi in
  let zi = z_inf r psi in
  let dz = Vec.sub state zi in
  let theta = Vec.add theta_inf (Mat.matvec r.w_cols dz) in
  Model.core_temps_of_theta r.model theta
