module Vec = Linalg.Vec

type t = { model : Model.t; mapping : int array array; subdivisions : int }

let build ?(subdivisions = 3) ?(ambient = 35.) ?(leak_beta = 0.05) fp =
  if subdivisions < 1 then invalid_arg "Grid_model.build: subdivisions < 1";
  let k = subdivisions in
  let cells =
    Array.to_list fp.Floorplan.blocks
    |> List.concat_map (fun b ->
           let w = b.Floorplan.width /. float_of_int k in
           let h = b.Floorplan.height /. float_of_int k in
           List.init (k * k) (fun c ->
               let r = c / k and col = c mod k in
               {
                 Floorplan.name = Printf.sprintf "%s__%d_%d" b.Floorplan.name r col;
                 layer = b.Floorplan.layer;
                 x = b.Floorplan.x +. (float_of_int col *. w);
                 y = b.Floorplan.y +. (float_of_int r *. h);
                 width = w;
                 height = h;
               }))
  in
  let fine = { Floorplan.blocks = Array.of_list cells } in
  (* The leakage slope is per CORE in the block model; spread it over the
     block's cells so the chip-wide leakage matches. *)
  let model =
    Hotspot.core_level ~ambient
      ~leak_beta:(leak_beta /. float_of_int (k * k))
      fine
  in
  let n_blocks = Floorplan.n_blocks fp in
  let mapping =
    Array.init n_blocks (fun i -> Array.init (k * k) (fun c -> (i * k * k) + c))
  in
  { model; mapping; subdivisions = k }

let expand_powers g psi =
  if Vec.dim psi <> Array.length g.mapping then
    invalid_arg "Grid_model.expand_powers: per-block power arity mismatch";
  let cells = Model.n_cores g.model in
  let out = Vec.zeros cells in
  Array.iteri
    (fun i nodes ->
      let share = psi.(i) /. float_of_int (Array.length nodes) in
      Array.iter (fun node -> out.(node) <- share) nodes)
    g.mapping;
  out

let steady_block_temps g psi =
  let temps = Model.steady_core_temps g.model (expand_powers g psi) in
  Array.map
    (fun nodes -> Array.fold_left (fun acc n -> Float.max acc temps.(n)) neg_infinity nodes)
    g.mapping

let profile_of g profile =
  List.map
    (fun (seg : Matex.segment) ->
      { seg with Matex.psi = expand_powers g seg.Matex.psi })
    profile
