type t = { name : string; wcet : float; period : float }

let make ~name ~wcet ~period =
  if wcet <= 0. then invalid_arg "Task.make: non-positive wcet";
  if period <= 0. then invalid_arg "Task.make: non-positive period";
  { name; wcet; period }

let utilization t = t.wcet /. t.period

let scale f t =
  if f <= 0. then invalid_arg "Task.scale: non-positive factor";
  { t with wcet = t.wcet *. f }

let pp fmt t =
  Format.fprintf fmt "%s(%.3g/%.3g = %.3g)" t.name t.wcet t.period (utilization t)
