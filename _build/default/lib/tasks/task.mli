(** Periodic real-time tasks over the paper's speed model.

    The paper's performance model measures work as speed x time with
    speed = frequency = voltage; a task here declares its work per job
    ([wcet], expressed in those work units — the execution time it would
    need on a core running at speed 1.0) and its activation period.  A
    fluid (EDF-schedulable) core of constant net speed [s] sustains any
    task set whose total utilization is at most [s]; that is the bridge
    from this module to the DVFS schedules of {!Sched}. *)

type t = {
  name : string;
  wcet : float;  (** Work units per job (execution time at speed 1.0). *)
  period : float;  (** Activation period = implicit deadline, s. *)
}

(** [make ~name ~wcet ~period] validates and builds a task.  Raises
    [Invalid_argument] on non-positive [wcet] or [period]. *)
val make : name:string -> wcet:float -> period:float -> t

(** [utilization t] is [wcet / period] — the net speed the task consumes
    on the core that hosts it. *)
val utilization : t -> float

(** [scale f t] multiplies the task's [wcet] by [f > 0] (workload
    inflation, used to probe a platform's thermal capacity). *)
val scale : float -> t -> t

(** [pp] prints [name(wcet/period = u)]. *)
val pp : Format.formatter -> t -> unit
