(** Thermal feasibility of partitioned periodic task sets.

    A fluid/EDF core sustains its task set iff its net speed is at least
    the set's total utilization, so a partition reduces to per-core
    speed demands; {!Core.Demand} then answers the thermal question.
    {!capacity_factor} inverts the pipeline: how much can the whole
    workload be scaled before the platform runs out of thermal
    headroom — the task-level analogue of the paper's throughput
    ceiling. *)

type verdict = {
  demands : float array;  (** Per-core utilization demanded. *)
  result : Core.Demand.result;  (** The thermal side's answer. *)
  schedulable : bool;
      (** Thermally feasible AND every core's delivered speed covers its
          demand. *)
}

(** [core_demands assignment] is each core's total utilization. *)
val core_demands : Partition.assignment -> float array

(** [check platform assignment] runs the full pipeline on an existing
    partition. *)
val check : Core.Platform.t -> Partition.assignment -> verdict

(** [schedule_tasks ?strategy platform tasks] partitions [tasks]
    (capacity = the platform's top voltage) and checks the result.
    [strategy] picks the packer: [`Worst_fit] (default — balances load,
    which spreads heat and lowers the peak) or [`First_fit].  Returns
    [None] when the packing itself fails. *)
val schedule_tasks :
  ?strategy:[ `Worst_fit | `First_fit ] ->
  Core.Platform.t ->
  Task.t list ->
  verdict option

(** [capacity_factor ?strategy ?tol platform tasks] binary-searches the
    largest uniform workload-scaling factor that {!schedule_tasks} still
    accepts (to relative tolerance [tol], default 1e-3).  Returns 0.
    when even an infinitesimal workload fails (infeasible platform). *)
val capacity_factor :
  ?strategy:[ `Worst_fit | `First_fit ] ->
  ?tol:float ->
  Core.Platform.t ->
  Task.t list ->
  float
