(** Partitioned task-to-core mapping.

    Classic first-fit-decreasing bin packing by utilization: bins are
    cores, each with the same speed capacity (at most the platform's top
    voltage, since a core can never sustain more net speed than
    [v_max]).  The result feeds {!Feasibility.core_demands} and then the
    thermal side of the problem. *)

type assignment = Task.t list array
(** [assignment.(i)] = tasks hosted by core [i]. *)

(** [first_fit_decreasing ~n_cores ~capacity tasks] packs tasks (sorted
    by descending utilization) onto the first core with room.  Returns
    [None] when some task does not fit anywhere (including any task with
    [utilization > capacity]).  Raises [Invalid_argument] on
    non-positive [n_cores] or [capacity]. *)
val first_fit_decreasing :
  n_cores:int -> capacity:float -> Task.t list -> assignment option

(** [worst_fit_decreasing ~n_cores ~capacity tasks] places each task
    (sorted by descending utilization) on the LEAST-loaded core with
    room.  Packs no better than first-fit, but balances load across
    cores — which matters thermally: spreading heat lowers the peak
    temperature, so this is the partitioner to prefer in front of
    {!Feasibility}. *)
val worst_fit_decreasing :
  n_cores:int -> capacity:float -> Task.t list -> assignment option

(** [utilizations a] is each core's total assigned utilization. *)
val utilizations : assignment -> float array

(** [balance a] is [max - min] of {!utilizations} — a packing-quality
    metric. *)
val balance : assignment -> float
