type assignment = Task.t list array

let utilizations a =
  Array.map (fun tasks -> List.fold_left (fun u t -> u +. Task.utilization t) 0. tasks) a

let first_fit_decreasing ~n_cores ~capacity tasks =
  if n_cores <= 0 then invalid_arg "Partition.first_fit_decreasing: non-positive cores";
  if capacity <= 0. then
    invalid_arg "Partition.first_fit_decreasing: non-positive capacity";
  let sorted =
    List.stable_sort
      (fun a b -> Float.compare (Task.utilization b) (Task.utilization a))
      tasks
  in
  let bins = Array.make n_cores [] in
  let load = Array.make n_cores 0. in
  let place task =
    let u = Task.utilization task in
    let rec try_bin i =
      if i >= n_cores then false
      else if load.(i) +. u <= capacity +. 1e-12 then begin
        bins.(i) <- task :: bins.(i);
        load.(i) <- load.(i) +. u;
        true
      end
      else try_bin (i + 1)
    in
    try_bin 0
  in
  if List.for_all place sorted then Some (Array.map List.rev bins) else None

let worst_fit_decreasing ~n_cores ~capacity tasks =
  if n_cores <= 0 then invalid_arg "Partition.worst_fit_decreasing: non-positive cores";
  if capacity <= 0. then
    invalid_arg "Partition.worst_fit_decreasing: non-positive capacity";
  let sorted =
    List.stable_sort
      (fun a b -> Float.compare (Task.utilization b) (Task.utilization a))
      tasks
  in
  let bins = Array.make n_cores [] in
  let load = Array.make n_cores 0. in
  let place task =
    let u = Task.utilization task in
    (* Least-loaded core first. *)
    let best = ref (-1) in
    for i = n_cores - 1 downto 0 do
      if load.(i) +. u <= capacity +. 1e-12 && (!best < 0 || load.(i) < load.(!best))
      then best := i
    done;
    if !best < 0 then false
    else begin
      bins.(!best) <- task :: bins.(!best);
      load.(!best) <- load.(!best) +. u;
      true
    end
  in
  if List.for_all place sorted then Some (Array.map List.rev bins) else None

let balance a =
  let u = utilizations a in
  Linalg.Vec.max u -. Linalg.Vec.min u
