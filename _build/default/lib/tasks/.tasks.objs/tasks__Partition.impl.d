lib/tasks/partition.ml: Array Float Linalg List Task
