lib/tasks/feasibility.ml: Array Core List Partition Power Task
