lib/tasks/task.ml: Format
