lib/tasks/feasibility.mli: Core Partition Task
