lib/tasks/task.mli: Format
