lib/tasks/partition.mli: Task
