type verdict = {
  demands : float array;
  result : Core.Demand.result;
  schedulable : bool;
}

let core_demands = Partition.utilizations

let check platform assignment =
  let demands = core_demands assignment in
  let result = Core.Demand.solve platform ~demands in
  let covered =
    Array.for_all2
      (fun delivered demand -> delivered +. 1e-6 >= demand)
      result.Core.Demand.delivered demands
  in
  { demands; result; schedulable = result.Core.Demand.feasible && covered }

let schedule_tasks ?(strategy = `Worst_fit) platform tasks =
  let n_cores = Core.Platform.n_cores platform in
  let capacity = Power.Vf.highest platform.Core.Platform.levels in
  let pack =
    match strategy with
    | `Worst_fit -> Partition.worst_fit_decreasing
    | `First_fit -> Partition.first_fit_decreasing
  in
  match pack ~n_cores ~capacity tasks with
  | None -> None
  | Some assignment -> Some (check platform assignment)

let capacity_factor ?strategy ?(tol = 1e-3) platform tasks =
  let feasible_at f =
    match schedule_tasks ?strategy platform (List.map (Task.scale f) tasks) with
    | Some v -> v.schedulable
    | None -> false
  in
  if not (feasible_at 1e-6) then 0.
  else begin
    (* Grow an upper bound from a known-feasible lower one, then bisect. *)
    let lo = ref 1e-6 and hi = ref 1. in
    while feasible_at !hi && !hi < 1024. do
      lo := !hi;
      hi := !hi *. 2.
    done;
    if feasible_at !hi then !hi (* capped: pathological capacity *)
    else begin
      while (!hi -. !lo) /. !hi > tol do
        let mid = (!lo +. !hi) /. 2. in
        if feasible_at mid then lo := mid else hi := mid
      done;
      !lo
    end
  end
