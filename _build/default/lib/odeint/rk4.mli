(** Classic fixed-step fourth-order Runge-Kutta integration.

    Used to cross-validate the closed-form matrix-exponential thermal
    solutions: both must produce the same trajectories for the linear
    system [dT/dt = A T + b]. *)

type derivative = float -> Linalg.Vec.t -> Linalg.Vec.t
(** [f t y] is the time derivative of the state [y] at time [t]. *)

(** [step f t y h] advances the state one RK4 step of size [h]. *)
val step : derivative -> float -> Linalg.Vec.t -> float -> Linalg.Vec.t

(** [integrate f ~t0 ~t1 ~dt y0] integrates from [t0] to [t1] with step
    [dt] (the final step is shortened to land exactly on [t1]) and returns
    the final state.  Raises [Invalid_argument] if [t1 < t0] or
    [dt <= 0]. *)
val integrate :
  derivative -> t0:float -> t1:float -> dt:float -> Linalg.Vec.t -> Linalg.Vec.t

(** [trajectory f ~t0 ~t1 ~dt y0] is like {!integrate} but returns all
    [(t, y)] samples including both endpoints. *)
val trajectory :
  derivative ->
  t0:float ->
  t1:float ->
  dt:float ->
  Linalg.Vec.t ->
  (float * Linalg.Vec.t) list
