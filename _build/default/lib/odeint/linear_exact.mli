(** Exact stepping for linear time-invariant systems [dy/dt = A y + b].

    For an LTI system the solution over a step of length [h] is
    [y(t+h) = e^{Ah} y(t) + (I - e^{Ah}) y_inf] with
    [y_inf = -A^{-1} b] — equation (3) of the paper.  This module packages
    that formula for reuse in tests and the thermal trace sampler. *)

type t
(** A prepared stepper for one [(A, b)] pair and one step size. *)

(** [prepare a b h] precomputes [e^{Ah}] and [y_inf].  Raises if [a] is
    singular. *)
val prepare : Linalg.Mat.t -> Linalg.Vec.t -> float -> t

(** [step s y] advances [y] by the prepared step size. *)
val step : t -> Linalg.Vec.t -> Linalg.Vec.t

(** [fixed_point s] is [y_inf = -A^{-1} b], the equilibrium the step
    converges to. *)
val fixed_point : t -> Linalg.Vec.t

(** [propagator s] is the prepared [e^{Ah}]. *)
val propagator : t -> Linalg.Mat.t
