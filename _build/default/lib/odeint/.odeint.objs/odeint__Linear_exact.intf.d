lib/odeint/linear_exact.mli: Linalg
