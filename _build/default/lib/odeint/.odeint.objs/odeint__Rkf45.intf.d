lib/odeint/rkf45.mli: Linalg Rk4
