lib/odeint/rkf45.ml: Array Float Linalg List
