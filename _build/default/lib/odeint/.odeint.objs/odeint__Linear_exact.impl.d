lib/odeint/linear_exact.ml: Linalg
