lib/odeint/rk4.mli: Linalg
