lib/odeint/rk4.ml: Float Linalg List Printf
