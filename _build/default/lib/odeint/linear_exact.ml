module Mat = Linalg.Mat
module Vec = Linalg.Vec

type t = { propagator : Mat.t; y_inf : Vec.t }

let prepare a b h =
  let y_inf = Vec.scale (-1.) (Linalg.Lu.solve a b) in
  { propagator = Linalg.Expm.expm_scaled a h; y_inf }

let step s y =
  (* y' = e^{Ah} y + (I - e^{Ah}) y_inf = e^{Ah}(y - y_inf) + y_inf *)
  Vec.add (Mat.matvec s.propagator (Vec.sub y s.y_inf)) s.y_inf

let fixed_point s = Vec.copy s.y_inf
let propagator s = Mat.copy s.propagator
