module Vec = Linalg.Vec

type derivative = float -> Vec.t -> Vec.t

let step f t y h =
  let k1 = f t y in
  let k2 = f (t +. (h /. 2.)) (Vec.axpy (h /. 2.) k1 y) in
  let k3 = f (t +. (h /. 2.)) (Vec.axpy (h /. 2.) k2 y) in
  let k4 = f (t +. h) (Vec.axpy h k3 y) in
  let incr =
    Vec.map2 (fun a b -> a +. b)
      (Vec.add k1 k4)
      (Vec.scale 2. (Vec.add k2 k3))
  in
  Vec.axpy (h /. 6.) incr y

let check_interval name ~t0 ~t1 ~dt =
  if t1 < t0 then invalid_arg (Printf.sprintf "Rk4.%s: t1 < t0" name);
  if dt <= 0. then invalid_arg (Printf.sprintf "Rk4.%s: dt <= 0" name)

let integrate f ~t0 ~t1 ~dt y0 =
  check_interval "integrate" ~t0 ~t1 ~dt;
  let rec go t y =
    if t >= t1 -. 1e-15 then y
    else
      let h = Float.min dt (t1 -. t) in
      go (t +. h) (step f t y h)
  in
  go t0 y0

let trajectory f ~t0 ~t1 ~dt y0 =
  check_interval "trajectory" ~t0 ~t1 ~dt;
  let rec go t y acc =
    if t >= t1 -. 1e-15 then List.rev ((t, y) :: acc)
    else
      let h = Float.min dt (t1 -. t) in
      go (t +. h) (step f t y h) ((t, y) :: acc)
  in
  go t0 y0 []
