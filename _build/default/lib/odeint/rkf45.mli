(** Adaptive Runge-Kutta-Fehlberg 4(5) integration.

    Provides error-controlled integration for stiff-ish thermal transients
    where a fixed RK4 step would be wastefully small over the slow tail of
    the response. *)

type stats = { steps : int; rejected : int }
(** Accepted and rejected step counts for the last call. *)

(** [integrate f ~t0 ~t1 ~tol ?h0 ?h_min y0] integrates [dy/dt = f t y]
    from [t0] to [t1] keeping the per-step error estimate below [tol]
    (absolute, infinity norm).  [h0] seeds the step size (default
    [(t1-t0)/100]); [h_min] (default [1e-12]) bounds shrinkage — going
    below it raises [Failure].  Returns the final state and step
    statistics. *)
val integrate :
  Rk4.derivative ->
  t0:float ->
  t1:float ->
  tol:float ->
  ?h0:float ->
  ?h_min:float ->
  Linalg.Vec.t ->
  Linalg.Vec.t * stats
