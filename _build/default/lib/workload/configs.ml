let layout_of_cores = function
  | 2 -> (1, 2)
  | 3 -> (1, 3)
  | 6 -> (2, 3)
  | 9 -> (3, 3)
  | n -> invalid_arg (Printf.sprintf "Configs.layout_of_cores: %d not in {2,3,6,9}" n)

let platform ~cores ~levels ~t_max =
  let rows, cols = layout_of_cores cores in
  Core.Platform.grid ~rows ~cols ~levels:(Power.Vf.table_iv levels) ~t_max ()

let platform_3d ~layers ~rows ~cols ~levels ~t_max =
  let fp = Thermal.Floorplan.stack3d ~layers ~rows ~cols ~core_width:4e-3 ~core_height:4e-3 in
  let model = Thermal.Hotspot.core_level fp in
  Core.Platform.make ~levels:(Power.Vf.table_iv levels) ~t_max model

let core_counts = [ 2; 3; 6; 9 ]
let level_counts = [ 2; 3; 4; 5 ]
let t_max_sweep = [ 50.; 55.; 60.; 65. ]
