(** Random periodic schedule generators for the Section VI-A/B
    experiments (step-up bounding, Theorem 1/5 validation).

    All generators are deterministic in the supplied [Random.State]. *)

(** [step_up rng ~n_cores ~period ~max_intervals ~levels] draws, for each
    core, between 1 and [max_intervals] segments with voltages sampled
    from [levels] and sorted ascending (so the schedule satisfies
    {!Sched.Stepup.is_step_up}); segment lengths are uniform random
    partitions of the period. *)
val step_up :
  Random.State.t ->
  n_cores:int ->
  period:float ->
  max_intervals:int ->
  levels:Power.Vf.level_set ->
  Sched.Schedule.t

(** [arbitrary rng ~n_cores ~period ~max_intervals ~levels] is like
    {!step_up} but keeps the random voltage order — generally not
    step-up. *)
val arbitrary :
  Random.State.t ->
  n_cores:int ->
  period:float ->
  max_intervals:int ->
  levels:Power.Vf.level_set ->
  Sched.Schedule.t

(** [phase_grid ~n_cores ~period ~v_low ~v_high ~offsets] builds the
    Fig. 3 family: every core runs half the period at [v_low] and half at
    [v_high], with core [i]'s high interval starting at [offsets.(i)]
    (wrapping).  [offsets.(i)] must lie in [0, period). *)
val phase_grid :
  n_cores:int ->
  period:float ->
  v_low:float ->
  v_high:float ->
  offsets:float array ->
  Sched.Schedule.t
