(* Uniform random partition of [0, period] into [parts] positive lengths:
   sort parts-1 uniform cut points.  Degenerate (zero-length) pieces are
   rare; fall back to an even split, which is still a valid random
   schedule since the voltages stay random. *)
let random_partition rng ~period ~parts =
  if parts = 1 then [ period ]
  else begin
    let cuts = Array.init (parts - 1) (fun _ -> Random.State.float rng period) in
    Array.sort Float.compare cuts;
    let rec lengths prev i acc =
      if i = parts - 1 then List.rev ((period -. prev) :: acc)
      else lengths cuts.(i) (i + 1) ((cuts.(i) -. prev) :: acc)
    in
    let ls = lengths 0. 0 [] in
    if List.exists (fun l -> l < 1e-9 *. period) ls then
      List.init parts (fun _ -> period /. float_of_int parts)
    else ls
  end

let random_core rng ~period ~max_intervals ~levels ~sorted =
  let voltages = Power.Vf.levels levels in
  let parts = 1 + Random.State.int rng max_intervals in
  let lengths = random_partition rng ~period ~parts in
  let vs = List.init parts (fun _ -> voltages.(Random.State.int rng (Array.length voltages))) in
  let vs = if sorted then List.sort Float.compare vs else vs in
  List.map2 (fun duration voltage -> { Sched.Schedule.duration; voltage }) lengths vs

let generate rng ~n_cores ~period ~max_intervals ~levels ~sorted =
  if n_cores <= 0 then invalid_arg "Random_sched: non-positive core count";
  if max_intervals <= 0 then invalid_arg "Random_sched: non-positive max_intervals";
  Sched.Schedule.make ~period
    (Array.init n_cores (fun _ -> random_core rng ~period ~max_intervals ~levels ~sorted))

let step_up rng ~n_cores ~period ~max_intervals ~levels =
  generate rng ~n_cores ~period ~max_intervals ~levels ~sorted:true

let arbitrary rng ~n_cores ~period ~max_intervals ~levels =
  generate rng ~n_cores ~period ~max_intervals ~levels ~sorted:false

let phase_grid ~n_cores ~period ~v_low ~v_high ~offsets =
  if Array.length offsets <> n_cores then
    invalid_arg "Random_sched.phase_grid: offsets arity mismatch";
  let half = period /. 2. in
  let core i =
    let x = offsets.(i) in
    if x < 0. || x >= period then
      invalid_arg "Random_sched.phase_grid: offset outside [0, period)";
    let seg d v = { Sched.Schedule.duration = d; voltage = v } in
    if x < 1e-12 then [ seg half v_high; seg half v_low ]
    else if x +. half <= period +. 1e-12 then
      (* high occupies [x, x+half) *)
      List.filter
        (fun s -> s.Sched.Schedule.duration > 1e-12)
        [ seg x v_low; seg half v_high; seg (period -. x -. half) v_low ]
    else
      (* high wraps around the period boundary *)
      [
        seg (x +. half -. period) v_high;
        seg (period -. half) v_low;
        seg (period -. x) v_high;
      ]
  in
  Sched.Schedule.make ~period (Array.init n_cores core)
