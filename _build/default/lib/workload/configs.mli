(** Canonical experiment configurations (Section VI).

    The paper evaluates 2x1, 3x1, 3x2 and 3x3 core meshes of 4x4 mm^2
    cores with supply voltages in [0.6, 1.3] V, ambient 35 degrees C and
    a 5 us DVFS transition stall.  This module names those setups so
    tests, examples and benches agree on them. *)

(** [layout_of_cores n] is the paper's [(rows, cols)] for [n] in
    {2, 3, 6, 9}.  Raises [Invalid_argument] otherwise. *)
val layout_of_cores : int -> int * int

(** [platform ~cores ~levels ~t_max] builds the standard platform:
    paper layout for [cores], Table IV level set for [levels] (2..5),
    default power model and [tau = 5e-6]. *)
val platform : cores:int -> levels:int -> t_max:float -> Core.Platform.t

(** [platform_3d ~layers ~rows ~cols ~levels ~t_max] builds a 3D-stacked
    variant (the paper's motivating technology) with the same power
    model and level sets. *)
val platform_3d :
  layers:int -> rows:int -> cols:int -> levels:int -> t_max:float -> Core.Platform.t

(** [core_counts] = [[2; 3; 6; 9]], the x-axis of Figs. 6 and 7. *)
val core_counts : int list

(** [level_counts] = [[2; 3; 4; 5]], Table IV's cases. *)
val level_counts : int list

(** [t_max_sweep] = [[50.; 55.; 60.; 65.]], Fig. 7's thresholds. *)
val t_max_sweep : float list
