lib/workload/phases.ml: Array Float List Power Printf Random Thermal
