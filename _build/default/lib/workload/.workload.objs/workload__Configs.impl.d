lib/workload/configs.ml: Core Power Printf Thermal
