lib/workload/random_sched.mli: Power Random Sched
