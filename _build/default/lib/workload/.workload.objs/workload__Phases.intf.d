lib/workload/phases.mli: Power Random Thermal
