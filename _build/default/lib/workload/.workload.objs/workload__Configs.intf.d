lib/workload/configs.mli: Core
