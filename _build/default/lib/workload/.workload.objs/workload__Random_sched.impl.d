lib/workload/random_sched.ml: Array Float List Power Random Sched
