(** Summary statistics over float arrays. *)

type summary = { n : int; mean : float; stddev : float; min : float; max : float }

(** [summarize xs] computes the summary; raises [Invalid_argument] on an
    empty array.  [stddev] is the sample standard deviation (n-1
    denominator; 0 for a single element). *)
val summarize : float array -> summary

(** [mean xs] is the arithmetic mean (raises on empty input). *)
val mean : float array -> float

(** [geometric_mean xs] for positive entries (raises otherwise) — used
    for the paper-style "average improvement" aggregation. *)
val geometric_mean : float array -> float

(** [percentile xs p] is the [p]-th percentile (0..100, linear
    interpolation on the sorted copy). *)
val percentile : float array -> float -> float
