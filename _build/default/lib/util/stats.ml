type summary = { n : int; mean : float; stddev : float; min : float; max : float }

let mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.mean: empty array";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let summarize xs =
  let n = Array.length xs in
  if n = 0 then invalid_arg "Stats.summarize: empty array";
  let m = mean xs in
  let var =
    if n = 1 then 0.
    else
      Array.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0. xs
      /. float_of_int (n - 1)
  in
  {
    n;
    mean = m;
    stddev = sqrt var;
    min = Array.fold_left Float.min xs.(0) xs;
    max = Array.fold_left Float.max xs.(0) xs;
  }

let geometric_mean xs =
  if Array.length xs = 0 then invalid_arg "Stats.geometric_mean: empty array";
  let acc =
    Array.fold_left
      (fun acc x ->
        if x <= 0. then invalid_arg "Stats.geometric_mean: non-positive entry";
        acc +. Float.log x)
      0. xs
  in
  Float.exp (acc /. float_of_int (Array.length xs))

let percentile xs p =
  if Array.length xs = 0 then invalid_arg "Stats.percentile: empty array";
  if p < 0. || p > 100. then invalid_arg "Stats.percentile: p outside [0, 100]";
  let sorted = Array.copy xs in
  Array.sort Float.compare sorted;
  let n = Array.length sorted in
  if n = 1 then sorted.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (n - 1) (lo + 1) in
    let frac = rank -. float_of_int lo in
    (sorted.(lo) *. (1. -. frac)) +. (sorted.(hi) *. frac)
  end
