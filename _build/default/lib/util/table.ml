type t = { headers : string list; mutable rows : string list list }

let create headers = { headers; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.headers then
    invalid_arg
      (Printf.sprintf "Table.add_row: %d cells for %d columns" (List.length cells)
         (List.length t.headers));
  t.rows <- cells :: t.rows

let add_float_row t ~label values =
  add_row t (label :: List.map (Printf.sprintf "%.4g") values)

let print ?(out = stdout) t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let n = List.length t.headers in
  let widths = Array.make n 0 in
  List.iter
    (List.iteri (fun i cell -> widths.(i) <- Stdlib.max widths.(i) (String.length cell)))
    all;
  let print_row cells =
    List.iteri
      (fun i cell ->
        Printf.fprintf out "%s%-*s" (if i = 0 then "" else "  ") widths.(i) cell)
      cells;
    output_char out '\n'
  in
  print_row t.headers;
  Printf.fprintf out "%s\n"
    (String.concat "  " (Array.to_list (Array.map (fun w -> String.make w '-') widths)));
  List.iter print_row rows
