(** Wall-clock timing for the Table V computation-time comparison. *)

(** [time_it f] runs [f ()] and returns [(result, elapsed_seconds)]. *)
val time_it : (unit -> 'a) -> 'a * float

(** [time_only f] runs [f ()] for its effect and returns the elapsed
    seconds. *)
val time_only : (unit -> 'a) -> float
