(** Minimal aligned ASCII tables for experiment output.

    The benchmark harness prints one table per reproduced paper table or
    figure; this keeps the formatting in one place. *)

type t

(** [create headers] starts a table with the given column headers. *)
val create : string list -> t

(** [add_row t cells] appends a row.  Raises [Invalid_argument] when the
    cell count differs from the header count. *)
val add_row : t -> string list -> unit

(** [add_float_row t ~label values] appends a row with a string label
    followed by [%.4g]-formatted floats; label + values must match the
    header count. *)
val add_float_row : t -> label:string -> float list -> unit

(** [print ?out t] renders with column alignment and a header rule
    (default to stdout). *)
val print : ?out:out_channel -> t -> unit
