lib/util/stats.mli:
