lib/util/svg_plot.ml: Array Buffer Float Fun List Printf String
