lib/util/csv.mli:
