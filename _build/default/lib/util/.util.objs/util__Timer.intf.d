lib/util/timer.mli:
