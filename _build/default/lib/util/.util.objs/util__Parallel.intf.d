lib/util/parallel.mli:
