lib/util/csv.ml: Fun List Printf String
