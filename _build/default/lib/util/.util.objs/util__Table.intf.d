lib/util/table.mli:
