(** Tiny CSV writer for experiment series (figure data dumps). *)

(** [write path ~header rows] writes a CSV file with a header line and
    [%.6g]-formatted float rows.  Raises [Invalid_argument] when a row's
    arity differs from the header's. *)
val write : string -> header:string list -> float list list -> unit

(** [write_labelled path ~header rows] like {!write} but each row carries
    a leading string label; [header] must include the label column. *)
val write_labelled : string -> header:string list -> (string * float list) list -> unit
