let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let write path ~header rows =
  let arity = List.length header in
  with_out path (fun oc ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun row ->
          if List.length row <> arity then
            invalid_arg "Csv.write: row arity differs from header";
          output_string oc (String.concat "," (List.map (Printf.sprintf "%.6g") row));
          output_char oc '\n')
        rows)

let write_labelled path ~header rows =
  let arity = List.length header in
  with_out path (fun oc ->
      output_string oc (String.concat "," header);
      output_char oc '\n';
      List.iter
        (fun (label, row) ->
          if List.length row + 1 <> arity then
            invalid_arg "Csv.write_labelled: row arity differs from header";
          output_string oc
            (String.concat "," (label :: List.map (Printf.sprintf "%.6g") row));
          output_char oc '\n')
        rows)
