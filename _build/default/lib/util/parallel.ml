let default_domains () =
  Stdlib.min 8 (Stdlib.max 1 (Domain.recommended_domain_count () - 1))

type 'b slot = Pending | Done of 'b | Failed of exn

let map ?domains f xs =
  let n = List.length xs in
  let workers = Stdlib.min n (match domains with Some d -> d | None -> default_domains ()) in
  if workers <= 1 || n <= 1 then List.map f xs
  else begin
    let input = Array.of_list xs in
    let output = Array.make n Pending in
    (* Static striping: worker w takes indices w, w+workers, ... Items in
       a sweep have comparable cost, so striping balances well enough
       without a work-stealing queue. *)
    let worker w () =
      let i = ref w in
      while !i < n do
        (output.(!i) <- (try Done (f input.(!i)) with e -> Failed e));
        i := !i + workers
      done
    in
    let handles = List.init workers (fun w -> Domain.spawn (worker w)) in
    List.iter Domain.join handles;
    Array.to_list
      (Array.map
         (function
           | Done y -> y
           | Failed e -> raise e
           | Pending -> assert false)
         output)
  end
