(** Dependency-free SVG charts for the reproduced figures.

    Enough of a plotting layer to regenerate the paper's figures as
    standalone [.svg] files from the CLI: multi-series line charts with
    automatic "nice" axis ticks and a legend, and a rectangular heat map
    (for the Fig. 3 peak-temperature surface).  Output is deterministic,
    making the files diff-able test artifacts. *)

type series = {
  label : string;
  points : (float * float) list;  (** (x, y), any order; drawn as given. *)
}

(** [line_chart ?width ?height ~title ~x_label ~y_label series] renders
    a chart.  Raises [Invalid_argument] when no series has a point or a
    coordinate is not finite. *)
val line_chart :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  series list ->
  string

(** [heatmap ?width ?height ~title ~x_label ~y_label cells] renders a
    grid heat map from [(x, y, value)] cells (a regular grid is assumed;
    cell size is inferred from the coordinate spacing).  Colours ramp
    from cool blue (min value) to hot red (max). *)
val heatmap :
  ?width:int ->
  ?height:int ->
  title:string ->
  x_label:string ->
  y_label:string ->
  (float * float * float) list ->
  string

(** [write path svg] writes the document to a file. *)
val write : string -> string -> unit
