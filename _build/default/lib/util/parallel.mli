(** Simple fork-join parallelism over OCaml 5 domains.

    The experiment sweeps (Figs. 6/7, the sensitivity study) evaluate
    many independent platform configurations; this module fans them out
    across domains.  Work items must be self-contained (each sweep point
    builds its own thermal model), which all experiment code here
    satisfies. *)

(** [map ?domains f xs] applies [f] to every element, distributing the
    list across up to [domains] worker domains (default: the machine's
    recommended domain count, capped at 8).  Order is preserved.  If any
    application raises, the exception is re-raised in the caller after
    all domains join (the first one in list order wins).  With
    [domains <= 1] or a single-element list this degrades to [List.map]
    without spawning. *)
val map : ?domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [default_domains ()] is the worker count {!map} would use. *)
val default_domains : unit -> int
