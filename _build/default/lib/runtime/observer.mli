(** Thermal state observer: reconstruct the full node-temperature state
    from noisy core sensors.

    Real DTM reads a handful of noisy on-die sensors, but the model's
    state includes every thermal node (and, on layered models, passive
    nodes with no sensor at all).  A discrete Luenberger observer runs
    the model in parallel with the plant and corrects with the
    measurement innovation:

    [xhat' = F xhat + g(psi) + L (y - H xhat)]

    where [F = e^{A dt}] is the true propagator, [H] selects core nodes
    and [L = gain * H^T].  Since [F] is a strict contraction and the
    correction pulls the estimate toward the measured cores, the error
    dynamics are stable for gains in (0, 1); the tests demonstrate
    convergence from a wrong initial state and noise suppression versus
    raw sensors. *)

type t

(** [create ?gain model ~dt] builds an observer stepping at the sensor
    sampling interval [dt].  [gain] in (0, 1] (default 0.5) scales the
    innovation correction.  Raises [Invalid_argument] on a bad gain or
    non-positive [dt]. *)
val create : ?gain:float -> Thermal.Model.t -> dt:float -> t

(** [initial observer] is the ambient-state estimate. *)
val initial : t -> Linalg.Vec.t

(** [update observer ~estimate ~psi ~measured] advances one sampling
    interval: propagate the estimate under core powers [psi], then
    correct with the measured absolute core temperatures.  Returns the
    new full-state estimate (ambient-relative). *)
val update :
  t ->
  estimate:Linalg.Vec.t ->
  psi:Linalg.Vec.t ->
  measured:Linalg.Vec.t ->
  Linalg.Vec.t

(** [core_estimates observer estimate] projects to absolute core
    temperatures. *)
val core_estimates : t -> Linalg.Vec.t -> Linalg.Vec.t
