module Vec = Linalg.Vec

type t = { model : Thermal.Model.t; dt : float; gain : float }

let create ?(gain = 0.5) model ~dt =
  if gain <= 0. || gain > 1. then invalid_arg "Observer.create: gain outside (0, 1]";
  if dt <= 0. then invalid_arg "Observer.create: non-positive dt";
  { model; dt; gain }

let initial o = Vec.zeros (Thermal.Model.n_nodes o.model)

let update o ~estimate ~psi ~measured =
  let cores = Thermal.Model.core_nodes o.model in
  if Vec.dim measured <> Array.length cores then
    invalid_arg "Observer.update: measurement arity differs from core count";
  (* Predict with the exact model... *)
  let predicted = Thermal.Model.step o.model ~dt:o.dt ~theta:estimate ~psi in
  (* ...then correct the measured nodes toward the innovation. *)
  let ambient = Thermal.Model.ambient o.model in
  let corrected = Vec.copy predicted in
  Array.iteri
    (fun k node ->
      let innovation = measured.(k) -. ambient -. predicted.(node) in
      corrected.(node) <- predicted.(node) +. (o.gain *. innovation))
    cores;
  corrected

let core_estimates o estimate = Thermal.Model.core_temps_of_theta o.model estimate
