lib/runtime/observer.ml: Array Linalg Thermal
