lib/runtime/governor.mli: Core
