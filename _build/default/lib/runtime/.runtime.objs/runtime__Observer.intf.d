lib/runtime/observer.mli: Linalg Thermal
