lib/runtime/governor.ml: Array Core Float Linalg Observer Power Random Thermal
