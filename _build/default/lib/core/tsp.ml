type result = {
  power_budget : float;
  continuous_voltage : float;
  voltages : float array;
  throughput : float;
  peak : float;
}

let solve (p : Platform.t) =
  let n = Platform.n_cores p in
  (* Steady core temperatures are affine in the uniform power:
     T(p) = offset + slope * p, with slope from a unit uniform load. *)
  let offset = Thermal.Model.steady_core_temps p.model (Array.make n 0.) in
  let with_unit = Thermal.Model.steady_core_temps p.model (Array.make n 1.) in
  let budget = ref infinity in
  for i = 0 to n - 1 do
    let slope = with_unit.(i) -. offset.(i) in
    if slope > 0. then budget := Float.min !budget ((p.t_max -. offset.(i)) /. slope)
  done;
  if !budget < 0. then invalid_arg "Tsp.solve: t_max below the zero-power steady state";
  let continuous_voltage = Power.Power_model.voltage_for_psi p.power !budget in
  let v =
    Power.Vf.round_down p.levels
      (Float.max (Power.Vf.lowest p.levels) continuous_voltage)
  in
  let voltages = Array.make n v in
  {
    power_budget = !budget;
    continuous_voltage;
    voltages;
    throughput = v;
    peak = Sched.Peak.steady_constant p.model p.power voltages;
  }
