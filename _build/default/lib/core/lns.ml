type result = { voltages : float array; throughput : float; peak : float }

let solve (p : Platform.t) =
  let ideal = Ideal.solve p in
  let voltages = Array.map (Power.Vf.round_down p.levels) ideal.Ideal.voltages in
  let peak = Sched.Peak.steady_constant p.model p.power voltages in
  let throughput =
    Array.fold_left ( +. ) 0. voltages /. float_of_int (Array.length voltages)
  in
  { voltages; throughput; peak }
