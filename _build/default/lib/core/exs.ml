type result = {
  voltages : float array;
  throughput : float;
  peak : float;
  evaluated : int;
  feasible : bool;
}

let mean a = Array.fold_left ( +. ) 0. a /. float_of_int (Array.length a)

(* Shared odometer enumeration: [visit digits] is called for every
   assignment; [on_tick i old_digit new_digit] reports each single-digit
   change so the caller can update state incrementally. *)
let enumerate ~n ~l ~on_tick ~visit =
  let digits = Array.make n 0 in
  let continue = ref true in
  let count = ref 0 in
  while !continue do
    incr count;
    visit digits;
    (* Advance the odometer, reporting every digit change. *)
    let rec carry i =
      if i >= n then continue := false
      else if digits.(i) + 1 < l then begin
        on_tick i digits.(i) (digits.(i) + 1);
        digits.(i) <- digits.(i) + 1
      end
      else begin
        on_tick i digits.(i) 0;
        digits.(i) <- 0;
        carry (i + 1)
      end
    in
    carry 0
  done;
  !count

let best_result (p : Platform.t) best_digits best_score levels evaluated =
  match best_digits with
  | Some digits ->
      let voltages = Array.map (fun d -> levels.(d)) digits in
      {
        voltages;
        throughput = mean voltages;
        peak = Sched.Peak.steady_constant p.model p.power voltages;
        evaluated;
        feasible = true;
      }
  | None ->
      ignore best_score;
      {
        voltages = Array.make (Platform.n_cores p) levels.(0);
        throughput = 0.;
        peak = infinity;
        evaluated;
        feasible = false;
      }

let solve (p : Platform.t) =
  let n = Platform.n_cores p in
  let levels = Power.Vf.levels p.levels in
  let l = Array.length levels in
  let psi_of_level = Array.map (Power.Power_model.psi p.power) levels in
  (* Steady core temps are affine in the power vector:
     T = offset + sum_j column_j * psi_j.  Factorize once. *)
  let offset = Thermal.Model.steady_core_temps p.model (Array.make n 0.) in
  let column j =
    let unit = Array.make n 0. in
    unit.(j) <- 1.;
    let with_unit = Thermal.Model.steady_core_temps p.model unit in
    Array.init n (fun i -> with_unit.(i) -. offset.(i))
  in
  let columns = Array.init n column in
  let temps = Array.copy offset in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      temps.(i) <- temps.(i) +. (columns.(j).(i) *. psi_of_level.(0))
    done
  done;
  let best_score = ref neg_infinity in
  let best_digits = ref None in
  let on_tick j d_old d_new =
    let dpsi = psi_of_level.(d_new) -. psi_of_level.(d_old) in
    for i = 0 to n - 1 do
      temps.(i) <- temps.(i) +. (columns.(j).(i) *. dpsi)
    done
  in
  let visit digits =
    let hottest = ref neg_infinity in
    for i = 0 to n - 1 do
      if temps.(i) > !hottest then hottest := temps.(i)
    done;
    if !hottest <= p.t_max +. 1e-9 then begin
      let score = ref 0. in
      for i = 0 to n - 1 do
        score := !score +. levels.(digits.(i))
      done;
      if !score > !best_score then begin
        best_score := !score;
        best_digits := Some (Array.copy digits)
      end
    end
  in
  let evaluated = enumerate ~n ~l ~on_tick ~visit in
  best_result p !best_digits !best_score levels evaluated

let solve_naive (p : Platform.t) =
  let n = Platform.n_cores p in
  let levels = Power.Vf.levels p.levels in
  let l = Array.length levels in
  let best_score = ref neg_infinity in
  let best_digits = ref None in
  (* Algorithm 1 verbatim: a fresh T^inf = -A^{-1} B factorization per
     combination (line 7), with no incremental reuse. *)
  let a = Thermal.Model.a_matrix p.model in
  let visit digits =
    let voltages = Array.map (fun d -> levels.(d)) digits in
    let psi = Power.Power_model.psi_vector p.power voltages in
    let b = Thermal.Model.input_of_core_powers p.model psi in
    let theta = Linalg.Vec.scale (-1.) (Linalg.Lu.solve a b) in
    let peak = Thermal.Model.max_core_temp p.model theta in
    if peak <= p.t_max +. 1e-9 then begin
      let score = Array.fold_left ( +. ) 0. voltages in
      if score > !best_score then begin
        best_score := score;
        best_digits := Some (Array.copy digits)
      end
    end
  in
  let evaluated = enumerate ~n ~l ~on_tick:(fun _ _ _ -> ()) ~visit in
  best_result p !best_digits !best_score levels evaluated

let solve_pruned (p : Platform.t) =
  let n = Platform.n_cores p in
  let levels = Power.Vf.levels p.levels in
  let l = Array.length levels in
  let psi_of_level = Array.map (Power.Power_model.psi p.power) levels in
  let offset = Thermal.Model.steady_core_temps p.model (Array.make n 0.) in
  let column j =
    let unit = Array.make n 0. in
    unit.(j) <- 1.;
    let with_unit = Thermal.Model.steady_core_temps p.model unit in
    Array.init n (fun i -> with_unit.(i) -. offset.(i))
  in
  let columns = Array.init n column in
  (* temps = steady core temps for the current partial assignment with
     every unassigned core preloaded at the LOWEST level (the subtree's
     temperature lower bound, by monotonicity). *)
  let temps = Array.copy offset in
  for j = 0 to n - 1 do
    for i = 0 to n - 1 do
      temps.(i) <- temps.(i) +. (columns.(j).(i) *. psi_of_level.(0))
    done
  done;
  let digits = Array.make n 0 in
  let best_score = ref neg_infinity in
  let best_digits = ref None in
  let visited = ref 0 in
  let bump j d_old d_new =
    let dpsi = psi_of_level.(d_new) -. psi_of_level.(d_old) in
    for i = 0 to n - 1 do
      temps.(i) <- temps.(i) +. (columns.(j).(i) *. dpsi)
    done
  in
  let hottest () =
    let h = ref neg_infinity in
    for i = 0 to n - 1 do
      if temps.(i) > !h then h := temps.(i)
    done;
    !h
  in
  (* Assign core j; cores 0..j-1 hold their digits, cores j..n-1 sit at
     level 0.  [score] is the partial voltage sum of cores 0..j-1. *)
  let v_top = levels.(l - 1) in
  let rec assign j score =
    incr visited;
    if hottest () > p.t_max +. 1e-9 then
      (* Even with the rest at minimum this subtree violates: prune. *)
      ()
    else if j = n then begin
      let total = score in
      if total > !best_score then begin
        best_score := total;
        best_digits := Some (Array.copy digits)
      end
    end
    else if score +. (float_of_int (n - j) *. v_top) <= !best_score +. 1e-12 then
      (* Bound: cannot beat the incumbent even at full speed. *)
      ()
    else
      (* Try levels high-to-low so good incumbents appear early and the
         score bound bites. *)
      for d = l - 1 downto 0 do
        bump j digits.(j) d;
        digits.(j) <- d;
        assign (j + 1) (score +. levels.(d))
      done;
    (* Restore core j to level 0 for the caller. *)
    if j < n then begin
      bump j digits.(j) 0;
      digits.(j) <- 0
    end
  in
  assign 0 0.;
  best_result p !best_digits !best_score levels !visited
