lib/core/pco.mli: Ao Platform Sched Tpt
