lib/core/pco.ml: Ao Array Platform Sched Tpt
