lib/core/exs.ml: Array Linalg Platform Power Sched Thermal
