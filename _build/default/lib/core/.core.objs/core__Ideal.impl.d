lib/core/ideal.ml: Array Float Platform Power Thermal
