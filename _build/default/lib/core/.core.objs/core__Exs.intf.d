lib/core/exs.mli: Platform
