lib/core/tsp.mli: Platform
