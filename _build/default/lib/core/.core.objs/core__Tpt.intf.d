lib/core/tpt.mli: Platform Sched
