lib/core/demand.mli: Platform Sched
