lib/core/sprint.mli: Ao Platform
