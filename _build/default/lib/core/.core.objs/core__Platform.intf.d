lib/core/platform.mli: Power Thermal
