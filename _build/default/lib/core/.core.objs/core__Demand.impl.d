lib/core/demand.ml: Array Float Platform Power Sched Stdlib Tpt
