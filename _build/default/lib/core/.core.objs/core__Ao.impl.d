lib/core/ao.ml: Array Float Ideal Logs Platform Power Sched Stdlib Tpt
