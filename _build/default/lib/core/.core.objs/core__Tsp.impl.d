lib/core/tsp.ml: Array Float Platform Power Sched Thermal
