lib/core/ao.mli: Ideal Platform Sched Tpt
