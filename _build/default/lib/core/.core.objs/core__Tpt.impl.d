lib/core/tpt.ml: Array Float Linalg Platform Printf Sched
