lib/core/lns.mli: Platform
