lib/core/lns.ml: Array Ideal Platform Power Sched
