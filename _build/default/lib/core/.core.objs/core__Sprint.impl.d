lib/core/sprint.ml: Ao Array Float Platform Power Thermal
