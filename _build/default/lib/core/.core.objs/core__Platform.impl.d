lib/core/platform.ml: Array Power Sched Thermal
