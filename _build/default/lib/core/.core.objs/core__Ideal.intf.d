lib/core/ideal.mli: Platform
