(** Periodic multi-core voltage schedules.

    A schedule assigns every core a cyclic sequence of (duration,
    voltage) segments covering one common period.  Globally the platform
    then runs through *state intervals* (the paper's [I_q]): maximal
    spans in which no core changes mode.  Construction keeps the per-core
    view (which is what the paper's Definitions 2 and 3 transform);
    {!state_intervals} derives the global view consumed by the thermal
    analysis. *)

type segment = { duration : float; voltage : float }
(** One per-core run: [duration] seconds at [voltage] volts
    ([voltage = 0.] means the core is off). *)

type t = private { period : float; cores : segment list array }
(** [cores.(i)] covers exactly [period] seconds.  Values of this type
    always satisfy {!val-validate}. *)

(** [make ~period cores] validates and builds a schedule.  Raises
    [Invalid_argument] when the period is non-positive, any core has no
    segments, any duration is non-positive, any voltage is negative, or a
    core's durations do not sum to the period (tolerance 1e-9
    relative). *)
val make : period:float -> segment list array -> t

(** [validate s] re-checks the invariants of {!make} (for values built by
    transforms). *)
val validate : t -> unit

(** [uniform ~period voltages] runs each core at one constant voltage. *)
val uniform : period:float -> float array -> t

(** [two_mode ~period ~low ~high ~high_ratio] gives every core [i] the
    pair [low.(i)] then [high.(i)], with the high mode occupying
    [high_ratio.(i)] of the period (low first, so the schedule is
    step-up).  A ratio of 0 or 1 degenerates to a single segment. *)
val two_mode :
  period:float -> low:float array -> high:float array -> high_ratio:float array -> t

(** [n_cores s] is the number of cores. *)
val n_cores : t -> int

(** [period s] is the common period, seconds. *)
val period : t -> float

(** [core_segments s i] is core [i]'s segment list. *)
val core_segments : t -> int -> segment list

(** [voltage_at s i t] is core [i]'s voltage at time [t mod period]. *)
val voltage_at : t -> int -> float -> float

(** [state_intervals s] merges all cores' change points into the global
    state-interval list: [(length, per-core voltages)] in time order,
    lengths summing to the period.  Change points closer than 1e-12 s are
    coalesced. *)
val state_intervals : t -> (float * float array) list

(** [shift s i offset] rotates core [i]'s cyclic segment sequence so that
    what used to happen at time [offset] now happens at time 0 — the
    phase shift PCO searches over.  [offset] may be any real; it is taken
    modulo the period. *)
val shift : t -> int -> float -> t

(** [scale_durations s factor] multiplies the period and every duration
    by [factor > 0] — the primitive behind m-oscillation. *)
val scale_durations : t -> float -> t

(** [transitions s i] counts core [i]'s mode changes per period,
    including the wrap-around boundary when first and last voltages
    differ.  A constant core has 0. *)
val transitions : t -> int -> int

(** [equal ?tol a b] compares periods and per-core segments within
    [tol]. *)
val equal : ?tol:float -> t -> t -> bool

(** [pp] prints one line per core: [core i: 12.0ms@0.60V | 8.0ms@1.30V]. *)
val pp : Format.formatter -> t -> unit

(** [to_string s] serializes to a compact line-oriented text format:

    {v
    period 0.02
    core 0: 0.012@0.6 0.008@1.3
    core 1: 0.02@1
    v}

    Durations and voltages are printed with enough digits to round-trip
    exactly through {!of_string}. *)
val to_string : t -> string

(** [of_string text] parses the {!to_string} format (validating like
    {!make}).  Raises [Failure] with a line diagnostic on malformed
    input and [Invalid_argument] when the parsed schedule is invalid. *)
val of_string : string -> t
