(** Step-up schedules (Definitions 1 and 2 of the paper).

    A schedule is *step-up* when every core's voltage is non-decreasing
    across the period.  Its peak temperature in the thermal stable status
    occurs exactly at the end of the period (Theorem 1), and the step-up
    reordering of an arbitrary schedule upper-bounds that schedule's peak
    temperature (Theorem 2) — which is what makes step-up schedules the
    workhorse of the paper's design-space exploration. *)

(** [is_step_up s] tests Definition 1: within every core's segment list,
    voltages never decrease (the wrap-around drop from last back to first
    segment is allowed — that is the period boundary). *)
val is_step_up : Schedule.t -> bool

(** [reorder s] is the paper's Definition 2: each core keeps exactly the
    same multiset of (duration, voltage) segments, re-ordered by
    non-decreasing voltage (equal-voltage runs are merged).  The result
    satisfies {!is_step_up}. *)
val reorder : Schedule.t -> Schedule.t
