(** SVG Gantt rendering of multi-core schedules.

    One row per core, one rectangle per segment, colour-ramped by
    voltage (cool blue at the lowest mode, hot red at the highest).
    Useful for eyeballing AO/PCO outputs and for documentation; the
    output is deterministic. *)

(** [gantt_svg ?width ?row_height ?title s] renders schedule [s].
    Voltage 0 (core off) is drawn grey.  Raises [Invalid_argument] on
    non-positive dimensions. *)
val gantt_svg : ?width:int -> ?row_height:int -> ?title:string -> Schedule.t -> string
