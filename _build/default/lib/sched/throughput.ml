let core_work ~tau segments =
  let gross =
    List.fold_left
      (fun acc seg ->
        acc
        +. (Power.Vf.frequency_of_voltage seg.Schedule.voltage *. seg.Schedule.duration))
      0. segments
  in
  let stall =
    match segments with
    | [] | [ _ ] -> 0.
    | first :: _ ->
        let rec boundaries prev = function
          | [] ->
              (* Wrap-around boundary: the stall eats into the last
                 segment's work. *)
              if Float.abs (prev.Schedule.voltage -. first.Schedule.voltage) > 1e-12 then
                tau *. prev.Schedule.voltage
              else 0.
          | seg :: rest ->
              (if Float.abs (prev.Schedule.voltage -. seg.Schedule.voltage) > 1e-12 then
                 tau *. prev.Schedule.voltage
               else 0.)
              +. boundaries seg rest
        in
        boundaries first (List.tl segments)
  in
  Float.max 0. (gross -. stall)

let per_core ~tau s =
  if tau < 0. then invalid_arg "Throughput.per_core: negative tau";
  let p = Schedule.period s in
  Array.init (Schedule.n_cores s) (fun i ->
      core_work ~tau (Schedule.core_segments s i) /. p)

let with_overhead ~tau s =
  let speeds = per_core ~tau s in
  Array.fold_left ( +. ) 0. speeds /. float_of_int (Schedule.n_cores s)

let ideal s = with_overhead ~tau:0. s
