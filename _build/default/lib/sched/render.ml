let colour_of ~v_min ~v_max v =
  if v <= 0. then "#bbbbbb"
  else begin
    let span = Float.max 1e-12 (v_max -. v_min) in
    let f = Float.max 0. (Float.min 1. ((v -. v_min) /. span)) in
    let r, g, b =
      if f < 0.5 then
        let t = f *. 2. in
        (int_of_float (70. +. (185. *. t)), int_of_float (110. +. (145. *. t)), 235)
      else
        let t = (f -. 0.5) *. 2. in
        (255, int_of_float (255. -. (175. *. t)), int_of_float (235. -. (195. *. t)))
    in
    Printf.sprintf "#%02x%02x%02x" r g b
  end

let gantt_svg ?(width = 720) ?(row_height = 34) ?(title = "schedule") s =
  if width <= 0 || row_height <= 0 then invalid_arg "Render.gantt_svg: non-positive size";
  let n = Schedule.n_cores s in
  let period = Schedule.period s in
  let margin_left = 70. and margin_top = 40. and margin_bottom = 34. in
  let plot_w = float_of_int width -. margin_left -. 20. in
  let height =
    int_of_float (margin_top +. (float_of_int (n * row_height)) +. margin_bottom)
  in
  (* Colour scale over the voltages actually used. *)
  let voltages =
    List.concat_map
      (fun i ->
        List.filter_map
          (fun seg -> if seg.Schedule.voltage > 0. then Some seg.Schedule.voltage else None)
          (Schedule.core_segments s i))
      (List.init n (fun i -> i))
  in
  let v_min = List.fold_left Float.min infinity voltages in
  let v_max = List.fold_left Float.max neg_infinity voltages in
  let b = Buffer.create 2048 in
  Buffer.add_string b
    (Printf.sprintf
       "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%d\" \
        viewBox=\"0 0 %d %d\" font-family=\"Helvetica, Arial, sans-serif\">\n"
       width height width height);
  Buffer.add_string b
    (Printf.sprintf "<rect width=\"%d\" height=\"%d\" fill=\"white\"/>\n" width height);
  Buffer.add_string b
    (Printf.sprintf
       "<text x=\"%.1f\" y=\"22\" font-size=\"14\" font-weight=\"bold\">%s (period %.4gms)</text>\n"
       margin_left title (period *. 1e3));
  for i = 0 to n - 1 do
    let y = margin_top +. float_of_int (i * row_height) in
    Buffer.add_string b
      (Printf.sprintf
         "<text x=\"%.1f\" y=\"%.1f\" font-size=\"12\" text-anchor=\"end\">core %d</text>\n"
         (margin_left -. 8.)
         (y +. (float_of_int row_height /. 2.) +. 4.)
         i);
    let at = ref 0. in
    List.iter
      (fun seg ->
        let x = margin_left +. (!at /. period *. plot_w) in
        let w = seg.Schedule.duration /. period *. plot_w in
        Buffer.add_string b
          (Printf.sprintf
             "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%d\" fill=\"%s\" \
              stroke=\"white\" stroke-width=\"0.5\"><title>%.4gms @ %.2fV</title></rect>\n"
             x (y +. 2.) w (row_height - 4)
             (colour_of ~v_min ~v_max seg.Schedule.voltage)
             (seg.Schedule.duration *. 1e3) seg.Schedule.voltage);
        at := !at +. seg.Schedule.duration)
      (Schedule.core_segments s i)
  done;
  (* Voltage legend. *)
  let legend_y = margin_top +. float_of_int (n * row_height) +. 18. in
  List.iteri
    (fun k v ->
      let x = margin_left +. (float_of_int k *. 90.) in
      Buffer.add_string b
        (Printf.sprintf
           "<rect x=\"%.1f\" y=\"%.1f\" width=\"14\" height=\"12\" fill=\"%s\"/>\n" x
           (legend_y -. 10.) (colour_of ~v_min ~v_max v));
      Buffer.add_string b
        (Printf.sprintf "<text x=\"%.1f\" y=\"%.1f\" font-size=\"11\">%.2fV</text>\n"
           (x +. 18.) legend_y v))
    (List.sort_uniq Float.compare voltages);
  Buffer.add_string b "</svg>\n";
  Buffer.contents b
