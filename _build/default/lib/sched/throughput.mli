(** Chip-wide throughput (Eq. (5)) with optional DVFS stall accounting.

    Throughput is the work done per core per second, with processing
    speed equal to frequency (= voltage, per the paper's convention):
    [THR = sum_q sum_i f_iq l_q / (N sum_q l_q)].  With a transition
    stall [tau], every mode change on a core halts it for [tau] seconds,
    losing the work of the mode being left; over one low/high
    oscillation the two boundaries lose [(v_L + v_H) tau] in total —
    exactly the loss Section V's [delta] extension repays. *)

(** [ideal s] is Eq. (5) exactly — no transition overhead. *)
val ideal : Schedule.t -> float

(** [with_overhead ~tau s] subtracts [tau * v_before] of work per mode
    change per period (wrap-around boundary included), clamping each
    core's work at 0.  [with_overhead ~tau:0. s = ideal s]. *)
val with_overhead : tau:float -> Schedule.t -> float

(** [per_core ~tau s] is each core's net speed (work per second), the
    summands of {!with_overhead}. *)
val per_core : tau:float -> Schedule.t -> float array
