lib/sched/peak.ml: Linalg List Power Printf Schedule Stepup Thermal
