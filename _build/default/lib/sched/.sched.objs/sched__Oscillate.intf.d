lib/sched/oscillate.mli: Schedule
