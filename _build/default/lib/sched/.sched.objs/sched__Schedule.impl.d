lib/sched/schedule.ml: Array Buffer Float Format List Printf String
