lib/sched/schedule.mli: Format
