lib/sched/render.mli: Schedule
