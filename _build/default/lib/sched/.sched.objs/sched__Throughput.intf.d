lib/sched/throughput.mli: Schedule
