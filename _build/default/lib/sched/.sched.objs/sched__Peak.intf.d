lib/sched/peak.mli: Linalg Power Schedule Thermal
