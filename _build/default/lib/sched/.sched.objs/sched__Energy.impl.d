lib/sched/energy.ml: Array Linalg List Peak Schedule Thermal Throughput
