lib/sched/stepup.mli: Schedule
