lib/sched/stepup.ml: Array Float List Schedule
