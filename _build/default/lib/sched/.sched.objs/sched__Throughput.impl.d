lib/sched/throughput.ml: Array Float List Power Schedule
