lib/sched/energy.mli: Power Schedule Thermal
