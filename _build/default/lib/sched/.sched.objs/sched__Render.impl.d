lib/sched/render.ml: Buffer Float List Printf Schedule
