lib/sched/oscillate.ml: Array Float List Schedule Stdlib
