(** Exact energy accounting for periodic schedules in the thermal stable
    status.

    Per Eq. (1) a core's power is [psi(v) + beta T(t)].  Over one stable
    period the [psi] part integrates trivially; the leakage part uses the
    closed-form [int theta dt] of {!Thermal.Model.integrate_theta}, so no
    sampling error enters.  Useful for the classic energy-vs-throughput
    trade-off studies the paper's related work (Bansal et al. [33])
    focuses on. *)

type breakdown = {
  dynamic : float;  (** [sum_i int psi_i dt] over one period, J. *)
  leakage : float;  (** [sum_i int beta T_i dt] over one period, J. *)
  period : float;  (** Seconds. *)
}

(** [total b] is [dynamic + leakage], J per period. *)
val total : breakdown -> float

(** [average_power b] is [total / period], W. *)
val average_power : breakdown -> float

(** [per_period model pm s] computes the stable-status energy breakdown
    of schedule [s]. *)
val per_period :
  Thermal.Model.t -> Power.Power_model.t -> Schedule.t -> breakdown

(** [per_work model pm ?tau s] is energy divided by net work
    (throughput x cores x period), J per unit work — the efficiency
    metric.  [tau] charges DVFS stalls against the work (default 0).
    Raises [Invalid_argument] when the schedule performs no work. *)
val per_work :
  Thermal.Model.t -> Power.Power_model.t -> ?tau:float -> Schedule.t -> float
