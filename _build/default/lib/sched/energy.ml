type breakdown = { dynamic : float; leakage : float; period : float }

let total b = b.dynamic +. b.leakage
let average_power b = total b /. b.period

let per_period model pm s =
  let profile = Peak.profile model pm s in
  let boundaries = Thermal.Matex.stable_boundaries model profile in
  let beta = Thermal.Model.leak_beta model in
  let ambient = Thermal.Model.ambient model in
  let cores = Thermal.Model.core_nodes model in
  let dynamic = ref 0. and leakage = ref 0. in
  List.iteri
    (fun q (seg : Thermal.Matex.segment) ->
      dynamic := !dynamic +. (Linalg.Vec.sum seg.Thermal.Matex.psi *. seg.duration);
      (* Leakage: beta * (theta_i + T_amb) integrated exactly. *)
      let theta_integral =
        Thermal.Model.integrate_theta model ~dt:seg.duration ~theta:boundaries.(q)
          ~psi:seg.Thermal.Matex.psi
      in
      Array.iter
        (fun i ->
          leakage :=
            !leakage +. (beta *. (theta_integral.(i) +. (ambient *. seg.duration))))
        cores)
    profile;
  { dynamic = !dynamic; leakage = !leakage; period = Schedule.period s }

let per_work model pm ?(tau = 0.) s =
  let b = per_period model pm s in
  let work =
    Throughput.with_overhead ~tau s
    *. float_of_int (Schedule.n_cores s)
    *. Schedule.period s
  in
  if work <= 0. then invalid_arg "Energy.per_work: schedule performs no work";
  total b /. work
