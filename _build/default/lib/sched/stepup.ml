let core_is_step_up segments =
  let rec go = function
    | a :: (b :: _ as rest) -> a.Schedule.voltage <= b.Schedule.voltage +. 1e-12 && go rest
    | [ _ ] | [] -> true
  in
  go segments

let is_step_up s =
  let ok = ref true in
  for i = 0 to Schedule.n_cores s - 1 do
    if not (core_is_step_up (Schedule.core_segments s i)) then ok := false
  done;
  !ok

let reorder s =
  let reorder_core segments =
    let sorted =
      List.stable_sort
        (fun a b -> Float.compare a.Schedule.voltage b.Schedule.voltage)
        segments
    in
    (* Merge equal-voltage neighbours so the result is canonical. *)
    let rec merge = function
      | a :: b :: rest when Float.abs (a.Schedule.voltage -. b.Schedule.voltage) < 1e-12
        ->
          merge
            ({ Schedule.duration = a.Schedule.duration +. b.Schedule.duration;
               voltage = a.Schedule.voltage }
            :: rest)
      | a :: rest -> a :: merge rest
      | [] -> []
    in
    merge sorted
  in
  Schedule.make ~period:(Schedule.period s)
    (Array.init (Schedule.n_cores s) (fun i -> reorder_core (Schedule.core_segments s i)))
