(** m-Oscillating schedules (Definition 3) and DVFS transition-overhead
    accounting (Section V).

    The m-Oscillating version of a periodic schedule scales every state
    interval down by [m] without touching voltages; repeated, it is the
    same periodic workload oscillating [m] times faster.  Theorem 5: for
    a step-up schedule, the stable-status peak temperature is monotone
    non-increasing in [m].

    Oscillating faster costs DVFS transitions.  With a clock stall of
    [tau] seconds per transition, a core alternating between [v_L] and
    [v_H] loses [(v_L + v_H) * tau] work per oscillation and must extend
    its high interval by [delta = (v_L + v_H) tau / (v_H - v_L)] to keep
    throughput — which bounds how large [m] can usefully be
    ({!max_m}). *)

(** [oscillate m s] is the paper's [S(m, t)]: period and every duration
    divided by [m].  [oscillate 1 s = s].  Raises [Invalid_argument] for
    [m < 1]. *)
val oscillate : int -> Schedule.t -> Schedule.t

(** [delta ~tau ~v_low ~v_high] is the high-interval extension (seconds)
    repaying one oscillation's two-transition stall:
    [(v_low + v_high) * tau / (v_high - v_low)].  Raises
    [Invalid_argument] unless [v_high > v_low] and [tau >= 0]. *)
val delta : tau:float -> v_low:float -> v_high:float -> float

(** [max_m_for_core ~tau ~v_low ~v_high ~t_low] is the paper's
    [M_i = floor (t_low / (delta_i + tau))]: the largest oscillation
    count whose shrunken low interval still covers the transition and its
    repayment.  [t_low] is the core's *original* (m = 1) low-mode time.
    Cores that never switch ([v_low = v_high] within 1e-12, or
    [t_low <= 0]) report [max_int]. *)
val max_m_for_core : tau:float -> v_low:float -> v_high:float -> t_low:float -> int

(** [max_m ~tau ~modes] is the chip-wide bound
    [M = min_i M_i] over per-core [(v_low, v_high, t_low)] triples,
    clamped below at 1. *)
val max_m : tau:float -> modes:(float * float * float) array -> int

(** [with_ramps ~steps ~tau s] replaces every instantaneous mode change
    with a linear voltage ramp of duration [tau], discretized into
    [steps] piecewise-constant sub-segments carved out of the head of
    the destination segment (so the period is preserved).  Models the
    regulator's finite slew rate, letting the thermal analysis bound the
    error of the instant-switch idealization.  Raises
    [Invalid_argument] when [steps < 1], [tau <= 0], or some destination
    segment is shorter than [tau]. *)
val with_ramps : steps:int -> tau:float -> Schedule.t -> Schedule.t
