type t = float array

let create n x = Array.make n x
let zeros n = create n 0.
let ones n = create n 1.
let init = Array.init
let copy = Array.copy
let dim = Array.length

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg
      (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
         (Array.length x) (Array.length y))

let add x y =
  check_dims "add" x y;
  Array.init (Array.length x) (fun i -> x.(i) +. y.(i))

let sub x y =
  check_dims "sub" x y;
  Array.init (Array.length x) (fun i -> x.(i) -. y.(i))

let scale a x = Array.map (fun xi -> a *. xi) x

let mul x y =
  check_dims "mul" x y;
  Array.init (Array.length x) (fun i -> x.(i) *. y.(i))

let axpy a x y =
  check_dims "axpy" x y;
  Array.init (Array.length x) (fun i -> (a *. x.(i)) +. y.(i))

let dot x y =
  check_dims "dot" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := !acc +. (x.(i) *. y.(i))
  done;
  !acc

let sum v = Array.fold_left ( +. ) 0. v

let mean v =
  if Array.length v = 0 then invalid_arg "Vec.mean: empty vector";
  sum v /. float_of_int (Array.length v)

let max v =
  if Array.length v = 0 then invalid_arg "Vec.max: empty vector";
  Array.fold_left Float.max v.(0) v

let min v =
  if Array.length v = 0 then invalid_arg "Vec.min: empty vector";
  Array.fold_left Float.min v.(0) v

let argmax v =
  if Array.length v = 0 then invalid_arg "Vec.argmax: empty vector";
  let best = ref 0 in
  for i = 1 to Array.length v - 1 do
    if v.(i) > v.(!best) then best := i
  done;
  !best

let norm2 v = sqrt (dot v v)

let norm_inf v = Array.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0. v

let dist_inf x y =
  check_dims "dist_inf" x y;
  let acc = ref 0. in
  for i = 0 to Array.length x - 1 do
    acc := Float.max !acc (Float.abs (x.(i) -. y.(i)))
  done;
  !acc

let map = Array.map
let map2 = Array.map2
let for_all = Array.for_all

let leq x y =
  check_dims "leq" x y;
  let ok = ref true in
  for i = 0 to Array.length x - 1 do
    if x.(i) > y.(i) then ok := false
  done;
  !ok

let approx_equal ?(tol = 1e-9) x y = dist_inf x y <= tol
let of_list = Array.of_list
let to_list = Array.to_list

let pp fmt v =
  Format.fprintf fmt "[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%.6g" x)
    v;
  Format.fprintf fmt "]"
