(** Eigendecomposition of real symmetric matrices by the cyclic Jacobi
    method.

    The thermal coefficient matrix [A = -C^{-1}(G - beta I)] is similar to
    the symmetric matrix [-C^{-1/2}(G - beta I)C^{-1/2}], so a symmetric
    eigensolver suffices to diagonalize it exactly; {!Thermal.Model}
    performs that similarity transform.  Jacobi is slow for huge matrices
    but the paper's platforms have at most a few dozen thermal nodes, where
    it is both fast and exceptionally accurate. *)

type t = {
  eigenvalues : Vec.t;  (** Ascending eigenvalues. *)
  eigenvectors : Mat.t;
      (** Orthonormal eigenvectors as columns, ordered to match
          [eigenvalues]: [a = V diag(lambda) V^T]. *)
}

(** [decompose ?tol ?max_sweeps a] diagonalizes the symmetric matrix [a].
    [tol] (default [1e-14]) is the relative off-diagonal threshold for
    convergence; [max_sweeps] (default [64]) bounds the number of cyclic
    sweeps.  Raises [Invalid_argument] if [a] is not symmetric to within
    [1e-8] relative, or [Failure] if convergence is not reached. *)
val decompose : ?tol:float -> ?max_sweeps:int -> Mat.t -> t

(** [reconstruct d] recomputes [V diag(lambda) V^T], for testing. *)
val reconstruct : t -> Mat.t

(** [apply_function d f] is [V diag(f lambda_i) V^T] — evaluates a scalar
    function of the matrix, e.g. [exp] for the matrix exponential of a
    symmetric matrix. *)
val apply_function : t -> (float -> float) -> Mat.t
