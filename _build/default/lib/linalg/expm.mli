(** Matrix exponential by Padé approximation with scaling and squaring.

    This is the generic [e^{A}] used to cross-check the eigen-basis route
    in {!Thermal.Matex} and to exponentiate matrices that are not similar
    to a symmetric one (e.g. perturbed models in tests).  The algorithm is
    the Higham 2005 degree-13 Padé scheme with a simplified, conservative
    scaling rule. *)

(** [expm a] is [e^{A}] for square [a]. *)
val expm : Mat.t -> Mat.t

(** [expm_scaled a t] is [e^{At}], avoiding an intermediate copy. *)
val expm_scaled : Mat.t -> float -> Mat.t
