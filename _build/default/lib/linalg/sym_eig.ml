type t = { eigenvalues : Vec.t; eigenvectors : Mat.t }

let off_diagonal_norm a =
  let n = a.Mat.rows in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j then begin
        let x = Mat.get a i j in
        acc := !acc +. (x *. x)
      end
    done
  done;
  sqrt !acc

(* One Jacobi rotation zeroing a.(p).(q), accumulating into v. *)
let rotate a v p q =
  let apq = Mat.get a p q in
  if Float.abs apq > 0. then begin
    let app = Mat.get a p p and aqq = Mat.get a q q in
    let theta = (aqq -. app) /. (2. *. apq) in
    (* Stable tangent of the rotation angle. *)
    let t =
      let sign = if theta >= 0. then 1. else -1. in
      sign /. (Float.abs theta +. sqrt ((theta *. theta) +. 1.))
    in
    let c = 1. /. sqrt ((t *. t) +. 1.) in
    let s = t *. c in
    let tau = s /. (1. +. c) in
    let n = a.Mat.rows in
    Mat.set a p p (app -. (t *. apq));
    Mat.set a q q (aqq +. (t *. apq));
    Mat.set a p q 0.;
    Mat.set a q p 0.;
    for i = 0 to n - 1 do
      if i <> p && i <> q then begin
        let aip = Mat.get a i p and aiq = Mat.get a i q in
        Mat.set a i p (aip -. (s *. (aiq +. (tau *. aip))));
        Mat.set a p i (Mat.get a i p);
        Mat.set a i q (aiq +. (s *. (aip -. (tau *. aiq))));
        Mat.set a q i (Mat.get a i q)
      end
    done;
    for i = 0 to n - 1 do
      let vip = Mat.get v i p and viq = Mat.get v i q in
      Mat.set v i p (vip -. (s *. (viq +. (tau *. vip))));
      Mat.set v i q (viq +. (s *. (vip -. (tau *. viq))))
    done
  end

let decompose ?(tol = 1e-14) ?(max_sweeps = 64) a0 =
  if not (Mat.is_square a0) then invalid_arg "Sym_eig.decompose: matrix not square";
  if not (Mat.is_symmetric ~tol:1e-8 a0) then
    invalid_arg "Sym_eig.decompose: matrix not symmetric";
  let n = a0.Mat.rows in
  let a = Mat.copy a0 in
  let v = Mat.identity n in
  let threshold = tol *. Float.max (Mat.norm_fro a0) 1e-300 in
  let sweeps = ref 0 in
  while off_diagonal_norm a > threshold && !sweeps < max_sweeps do
    incr sweeps;
    for p = 0 to n - 2 do
      for q = p + 1 to n - 1 do
        rotate a v p q
      done
    done
  done;
  if off_diagonal_norm a > threshold then
    failwith
      (Printf.sprintf "Sym_eig.decompose: no convergence after %d sweeps (off-norm %g)"
         max_sweeps (off_diagonal_norm a));
  (* Sort eigenpairs ascending. *)
  let order = Array.init n (fun i -> i) in
  Array.sort (fun i j -> Float.compare (Mat.get a i i) (Mat.get a j j)) order;
  let eigenvalues = Array.map (fun i -> Mat.get a i i) order in
  let eigenvectors = Mat.init n n (fun i j -> Mat.get v i order.(j)) in
  { eigenvalues; eigenvectors }

let reconstruct d =
  let n = Array.length d.eigenvalues in
  let vl = Mat.matmul d.eigenvectors (Mat.diag d.eigenvalues) in
  Mat.matmul vl (Mat.init n n (fun i j -> Mat.get d.eigenvectors j i))

let apply_function d f =
  let n = Array.length d.eigenvalues in
  let fl = Array.map f d.eigenvalues in
  let vl = Mat.matmul d.eigenvectors (Mat.diag fl) in
  Mat.matmul vl (Mat.init n n (fun i j -> Mat.get d.eigenvectors j i))
