(** LU decomposition with partial pivoting, and the linear solves built on
    it.

    The thermal code needs [A^{-1}B] (steady states), [(I - K)^{-1}]
    (periodic stable status) and determinant signs (sanity checks).  All of
    these route through a single factorization so repeated solves against
    the same matrix are cheap. *)

type factorization
(** An opaque [P A = L U] factorization of a square matrix. *)

exception Singular of int
(** Raised (with the offending pivot column) when the matrix is singular
    to working precision. *)

(** [factorize a] computes the partial-pivoting LU factorization of the
    square matrix [a].  Raises {!Singular} when a pivot underflows.  [a]
    is not modified. *)
val factorize : Mat.t -> factorization

(** [solve_vec f b] solves [A x = b] for the factorized [A]. *)
val solve_vec : factorization -> Vec.t -> Vec.t

(** [solve_mat f b] solves [A X = B] column by column. *)
val solve_mat : factorization -> Mat.t -> Mat.t

(** [solve a b] is [solve_vec (factorize a) b]. *)
val solve : Mat.t -> Vec.t -> Vec.t

(** [inverse a] is [A^{-1}].  Raises {!Singular} if [a] is singular. *)
val inverse : Mat.t -> Mat.t

(** [det a] is the determinant, computed from the factorization. *)
val det : Mat.t -> float

(** [det_of f] is the determinant read off an existing factorization. *)
val det_of : factorization -> float
