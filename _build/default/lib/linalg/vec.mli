(** Dense vectors of floats.

    A vector is a plain [float array]; this module provides the arithmetic
    and reduction operations used throughout the thermal and scheduling
    code.  All binary operations require operands of equal length and raise
    [Invalid_argument] otherwise. *)

type t = float array

(** [create n x] is a fresh vector of length [n] filled with [x]. *)
val create : int -> float -> t

(** [zeros n] is a fresh vector of [n] zeros. *)
val zeros : int -> t

(** [ones n] is a fresh vector of [n] ones. *)
val ones : int -> t

(** [init n f] is [| f 0; ...; f (n-1) |]. *)
val init : int -> (int -> float) -> t

(** [copy v] is a fresh copy of [v]. *)
val copy : t -> t

(** [dim v] is the length of [v]. *)
val dim : t -> int

(** [add x y] is the element-wise sum. *)
val add : t -> t -> t

(** [sub x y] is the element-wise difference. *)
val sub : t -> t -> t

(** [scale a x] multiplies every element of [x] by [a]. *)
val scale : float -> t -> t

(** [mul x y] is the element-wise (Hadamard) product. *)
val mul : t -> t -> t

(** [axpy a x y] is [a*x + y] without mutating either operand. *)
val axpy : float -> t -> t -> t

(** [dot x y] is the inner product. *)
val dot : t -> t -> float

(** [sum v] is the sum of all elements. *)
val sum : t -> float

(** [mean v] is the arithmetic mean; raises [Invalid_argument] on an
    empty vector. *)
val mean : t -> float

(** [max v] is the largest element; raises on empty input. *)
val max : t -> float

(** [min v] is the smallest element; raises on empty input. *)
val min : t -> float

(** [argmax v] is the index of the largest element (first on ties). *)
val argmax : t -> int

(** [norm2 v] is the Euclidean norm. *)
val norm2 : t -> float

(** [norm_inf v] is the max-absolute-value norm. *)
val norm_inf : t -> float

(** [dist_inf x y] is [norm_inf (sub x y)]. *)
val dist_inf : t -> t -> float

(** [map f v] applies [f] element-wise. *)
val map : (float -> float) -> t -> t

(** [map2 f x y] applies [f] to paired elements. *)
val map2 : (float -> float -> float) -> t -> t -> t

(** [for_all p v] tests whether every element satisfies [p]. *)
val for_all : (float -> bool) -> t -> bool

(** [leq x y] is true when [x.(i) <= y.(i)] for every [i] — the
    element-wise matrix ordering the paper uses for temperature vectors. *)
val leq : t -> t -> bool

(** [approx_equal ?tol x y] is true when the operands differ by at most
    [tol] (default [1e-9]) in the infinity norm. *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [of_list l] converts a list. *)
val of_list : float list -> t

(** [to_list v] converts to a list. *)
val to_list : t -> float list

(** [pp] prints as [[x0; x1; ...]] with 6 significant digits. *)
val pp : Format.formatter -> t -> unit
