(** Dense row-major matrices of floats.

    This is the workhorse representation for the thermal coefficient
    matrices [A], [B], the exponentials [e^{At}] and the stable-status
    operators [(I - K)^{-1}].  Dimensions are checked on every binary
    operation; mismatches raise [Invalid_argument]. *)

type t = { rows : int; cols : int; data : float array }
(** Row-major storage: element [(i, j)] lives at [data.(i * cols + j)]. *)

(** [create r c x] is an [r x c] matrix filled with [x]. *)
val create : int -> int -> float -> t

(** [zeros r c] is an all-zero [r x c] matrix. *)
val zeros : int -> int -> t

(** [identity n] is the [n x n] identity. *)
val identity : int -> t

(** [init r c f] is the matrix with [f i j] at position [(i, j)]. *)
val init : int -> int -> (int -> int -> float) -> t

(** [diag v] is the square matrix with [v] on the diagonal. *)
val diag : Vec.t -> t

(** [diagonal m] extracts the diagonal of a square matrix. *)
val diagonal : t -> Vec.t

(** [of_rows rows] builds a matrix from row vectors (all equal length). *)
val of_rows : float array array -> t

(** [to_rows m] is the inverse of {!of_rows}. *)
val to_rows : t -> float array array

(** [copy m] is a deep copy. *)
val copy : t -> t

(** [dims m] is [(rows, cols)]. *)
val dims : t -> int * int

(** [get m i j] reads element [(i, j)]. *)
val get : t -> int -> int -> float

(** [set m i j x] writes element [(i, j)] in place. *)
val set : t -> int -> int -> float -> unit

(** [row m i] is a fresh copy of row [i]. *)
val row : t -> int -> Vec.t

(** [col m j] is a fresh copy of column [j]. *)
val col : t -> int -> Vec.t

(** [transpose m] is the transpose. *)
val transpose : t -> t

(** [add a b] is the element-wise sum. *)
val add : t -> t -> t

(** [sub a b] is the element-wise difference. *)
val sub : t -> t -> t

(** [scale s a] multiplies every element by [s]. *)
val scale : float -> t -> t

(** [matmul a b] is the matrix product; [a.cols] must equal [b.rows]. *)
val matmul : t -> t -> t

(** [matvec a x] is the matrix-vector product. *)
val matvec : t -> Vec.t -> Vec.t

(** [vecmat x a] is the row-vector-matrix product [x^T A]. *)
val vecmat : Vec.t -> t -> Vec.t

(** [add_scaled_identity s a] is [a + s*I] for square [a]. *)
val add_scaled_identity : float -> t -> t

(** [trace m] is the sum of diagonal elements of a square matrix. *)
val trace : t -> float

(** [norm_inf m] is the max row-sum norm. *)
val norm_inf : t -> float

(** [norm_fro m] is the Frobenius norm. *)
val norm_fro : t -> float

(** [is_square m] tests squareness. *)
val is_square : t -> bool

(** [is_symmetric ?tol m] tests symmetry up to [tol] (default [1e-9],
    relative to the largest element magnitude). *)
val is_symmetric : ?tol:float -> t -> bool

(** [map f m] applies [f] element-wise. *)
val map : (float -> float) -> t -> t

(** [approx_equal ?tol a b] compares element-wise within [tol]
    (default [1e-9]). *)
val approx_equal : ?tol:float -> t -> t -> bool

(** [pp] prints one row per line with aligned 6-significant-digit
    entries. *)
val pp : Format.formatter -> t -> unit
