lib/linalg/expm.ml: Array Float Lu Mat
