test/test_core.ml: Alcotest Array Core Float Gen List Power Printf QCheck QCheck_alcotest Sched Thermal Workload
