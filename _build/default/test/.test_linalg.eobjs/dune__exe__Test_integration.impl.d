test/test_integration.ml: Alcotest Array Core Filename Float Fun Linalg List Power Printf Sched String Sys Thermal Util Workload
