test/test_extensions.ml: Alcotest Array Core Filename Float Fun Gen In_channel Linalg List Power Printf QCheck QCheck_alcotest Random Runtime Sched String Sys Thermal Workload
