test/test_theorems.ml: Alcotest Gen Linalg List Power Printf QCheck QCheck_alcotest Random Sched Thermal Workload
