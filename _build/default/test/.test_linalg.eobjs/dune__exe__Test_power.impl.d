test/test_power.ml: Alcotest Array Float Gen List Power Printf QCheck QCheck_alcotest
