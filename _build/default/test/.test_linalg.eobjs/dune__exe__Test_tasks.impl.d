test/test_tasks.ml: Alcotest Array Core List Option Printf Sched Tasks Workload
