test/test_linalg.ml: Alcotest Array Float Gen Linalg List Printf QCheck QCheck_alcotest Random
