test/test_odeint.mli:
