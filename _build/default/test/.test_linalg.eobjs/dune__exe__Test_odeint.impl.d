test/test_odeint.ml: Alcotest Array Float Gen Linalg List Odeint QCheck QCheck_alcotest
