test/test_sched.ml: Alcotest Array Float Linalg List Power Sched String Thermal
