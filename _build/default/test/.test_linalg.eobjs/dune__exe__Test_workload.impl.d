test/test_workload.ml: Alcotest Array Core List Power Printf Random Sched Thermal Workload
