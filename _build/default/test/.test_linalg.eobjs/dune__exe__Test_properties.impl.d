test/test_properties.ml: Alcotest Array Float Gen Linalg List Power QCheck QCheck_alcotest Random Sched Thermal Workload
