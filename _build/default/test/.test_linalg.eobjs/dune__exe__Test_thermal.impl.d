test/test_thermal.ml: Alcotest Array Float Linalg Odeint Option Printf Seq Thermal
