(* Tests for the random-schedule generators and canonical configurations. *)

module Rs = Workload.Random_sched
module S = Sched.Schedule

let check_close tol = Alcotest.(check (float tol))
let levels2 = Power.Vf.table_iv 2
let levels5 = Power.Vf.table_iv 5

let test_step_up_generator () =
  let rng = Random.State.make [| 1 |] in
  for _ = 1 to 50 do
    let s = Rs.step_up rng ~n_cores:4 ~period:1. ~max_intervals:5 ~levels:levels5 in
    Alcotest.(check bool) "generated schedule is step-up" true (Sched.Stepup.is_step_up s);
    Alcotest.(check int) "core count" 4 (S.n_cores s);
    check_close 1e-12 "period" 1. (S.period s)
  done

let test_arbitrary_generator_valid () =
  let rng = Random.State.make [| 2 |] in
  for _ = 1 to 50 do
    let s = Rs.arbitrary rng ~n_cores:3 ~period:0.5 ~max_intervals:6 ~levels:levels5 in
    (* make already validates; re-validate to be explicit. *)
    S.validate s;
    Alcotest.(check bool) "voltages are available levels" true
      (Array.for_all
         (fun i ->
           List.for_all
             (fun seg -> Power.Vf.mem levels5 seg.S.voltage)
             (S.core_segments s i))
         (Array.init (S.n_cores s) (fun i -> i)))
  done

let test_arbitrary_sometimes_not_step_up () =
  let rng = Random.State.make [| 3 |] in
  let any_non_step_up = ref false in
  for _ = 1 to 100 do
    let s = Rs.arbitrary rng ~n_cores:3 ~period:1. ~max_intervals:5 ~levels:levels2 in
    if not (Sched.Stepup.is_step_up s) then any_non_step_up := true
  done;
  Alcotest.(check bool) "generator explores non-step-up space" true !any_non_step_up

let test_generators_deterministic () =
  let s1 =
    Rs.step_up (Random.State.make [| 9 |]) ~n_cores:3 ~period:1. ~max_intervals:4
      ~levels:levels5
  in
  let s2 =
    Rs.step_up (Random.State.make [| 9 |]) ~n_cores:3 ~period:1. ~max_intervals:4
      ~levels:levels5
  in
  Alcotest.(check bool) "same seed, same schedule" true (S.equal s1 s2)

let test_phase_grid_shapes () =
  let s =
    Rs.phase_grid ~n_cores:3 ~period:6. ~v_low:0.6 ~v_high:1.3 ~offsets:[| 3.; 0.6; 4.2 |]
  in
  check_close 1e-12 "period" 6. (S.period s);
  (* Core 0: high on [3, 6). *)
  check_close 1e-12 "core0 low early" 0.6 (S.voltage_at s 0 1.);
  check_close 1e-12 "core0 high late" 1.3 (S.voltage_at s 0 5.);
  (* Core 2: high on [4.2, 6) + [0, 1.2) — wraps. *)
  check_close 1e-12 "core2 wraps high" 1.3 (S.voltage_at s 2 0.5);
  check_close 1e-12 "core2 low mid" 0.6 (S.voltage_at s 2 3.);
  (* Every core has exactly 50% duty at high voltage. *)
  Array.iteri
    (fun i _ ->
      let high =
        List.fold_left
          (fun acc seg -> if seg.S.voltage > 1. then acc +. seg.S.duration else acc)
          0. (S.core_segments s i)
      in
      check_close 1e-9 (Printf.sprintf "core %d half-high" i) 3. high)
    [| (); (); () |]

let test_phase_grid_zero_offset_step_like () =
  let s = Rs.phase_grid ~n_cores:2 ~period:1. ~v_low:0.6 ~v_high:1.3 ~offsets:[| 0.; 0. |] in
  check_close 1e-12 "high first" 1.3 (S.voltage_at s 0 0.1)

let test_phase_grid_rejects_bad_offset () =
  Alcotest.(check bool) "offset at period rejected" true
    (match
       Rs.phase_grid ~n_cores:1 ~period:1. ~v_low:0.6 ~v_high:1.3 ~offsets:[| 1. |]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* --------------------------------------------------------------- phases *)

let test_phases_shape () =
  let rng = Random.State.make [| 4 |] in
  let trace =
    Workload.Phases.generate rng ~phases:Workload.Phases.default_phases
      ~names:[| "core_0_0"; "core_0_1" |] ~duration:1.0 ~dt:0.01
      ~power:Power.Power_model.default ~levels:(Power.Vf.table_iv 5)
  in
  Alcotest.(check int) "rows" 100 (Array.length trace.Thermal.Ptrace.samples);
  Alcotest.(check int) "columns" 2 (Array.length trace.Thermal.Ptrace.names);
  Alcotest.(check bool) "powers within the mode range" true
    (Array.for_all
       (fun row ->
         Array.for_all
           (fun p ->
             p >= Power.Power_model.psi Power.Power_model.default 0.6 -. 1e-9
             && p <= Power.Power_model.psi Power.Power_model.default 1.3 +. 1e-9)
           row)
       trace.Thermal.Ptrace.samples)

let test_phases_deterministic () =
  let gen seed =
    Workload.Phases.generate (Random.State.make [| seed |])
      ~phases:Workload.Phases.default_phases ~names:[| "a" |] ~duration:0.5 ~dt:0.01
      ~power:Power.Power_model.default ~levels:(Power.Vf.table_iv 2)
  in
  Alcotest.(check bool) "same seed same trace" true
    ((gen 7).Thermal.Ptrace.samples = (gen 7).Thermal.Ptrace.samples);
  Alcotest.(check bool) "phases actually vary" true
    (let t = gen 7 in
     let col = Array.map (fun row -> row.(0)) t.Thermal.Ptrace.samples in
     Array.exists (fun p -> p <> col.(0)) col)

let test_phases_mean_utilization () =
  Alcotest.(check bool) "stationary mean in (0, 1)" true
    (let u = Workload.Phases.mean_utilization Workload.Phases.default_phases in
     u > 0.1 && u < 0.9)

let test_phases_replay_through_model () =
  (* End-to-end: synthetic trace -> ptrace replay -> sane temperatures. *)
  let fp = Thermal.Floorplan.grid ~rows:1 ~cols:2 ~core_width:4e-3 ~core_height:4e-3 in
  let model = Thermal.Hotspot.core_level fp in
  let rng = Random.State.make [| 9 |] in
  let names = Array.map (fun b -> b.Thermal.Floorplan.name) fp.Thermal.Floorplan.blocks in
  let trace =
    Workload.Phases.generate rng ~phases:Workload.Phases.default_phases ~names
      ~duration:2.0 ~dt:0.02 ~power:Power.Power_model.default
      ~levels:(Power.Vf.table_iv 5)
  in
  let map = Thermal.Ptrace.columns_for_model trace names in
  let temps = Thermal.Ptrace.replay model trace ~interval:0.02 ~column_map:map in
  let peak = Thermal.Trace.peak temps in
  Alcotest.(check bool) "temperatures in a physical band" true (peak > 36. && peak < 80.)

let test_phases_validation () =
  let rng = Random.State.make [| 1 |] in
  Alcotest.(check bool) "bad utilization rejected" true
    (match
       Workload.Phases.generate rng
         ~phases:[ { Workload.Phases.name = "x"; utilization = 1.5; mean_dwell = 0.1 } ]
         ~names:[| "a" |] ~duration:1. ~dt:0.1 ~power:Power.Power_model.default
         ~levels:(Power.Vf.table_iv 2)
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty phases rejected" true
    (match Workload.Phases.mean_utilization [] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_configs_layouts () =
  List.iter
    (fun (n, expected) ->
      Alcotest.(check (pair int int))
        (Printf.sprintf "%d cores" n)
        expected
        (Workload.Configs.layout_of_cores n))
    [ (2, (1, 2)); (3, (1, 3)); (6, (2, 3)); (9, (3, 3)) ];
  Alcotest.(check bool) "unknown count rejected" true
    (match Workload.Configs.layout_of_cores 5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_configs_platform_cores () =
  List.iter
    (fun n ->
      let p = Workload.Configs.platform ~cores:n ~levels:2 ~t_max:65. in
      Alcotest.(check int) (Printf.sprintf "%d-core platform" n) n (Core.Platform.n_cores p))
    Workload.Configs.core_counts

let test_configs_platform_3d () =
  let p = Workload.Configs.platform_3d ~layers:2 ~rows:2 ~cols:2 ~levels:2 ~t_max:65. in
  Alcotest.(check int) "8 cores in 2x2x2 stack" 8 (Core.Platform.n_cores p)

let () =
  Alcotest.run "workload"
    [
      ( "random_sched",
        [
          Alcotest.test_case "step-up generator" `Quick test_step_up_generator;
          Alcotest.test_case "arbitrary generator valid" `Quick test_arbitrary_generator_valid;
          Alcotest.test_case "explores non-step-up" `Quick test_arbitrary_sometimes_not_step_up;
          Alcotest.test_case "deterministic" `Quick test_generators_deterministic;
          Alcotest.test_case "phase grid shapes" `Quick test_phase_grid_shapes;
          Alcotest.test_case "phase grid zero offset" `Quick test_phase_grid_zero_offset_step_like;
          Alcotest.test_case "phase grid validation" `Quick test_phase_grid_rejects_bad_offset;
        ] );
      ( "phases",
        [
          Alcotest.test_case "shape" `Quick test_phases_shape;
          Alcotest.test_case "deterministic" `Quick test_phases_deterministic;
          Alcotest.test_case "mean utilization" `Quick test_phases_mean_utilization;
          Alcotest.test_case "replay end to end" `Quick test_phases_replay_through_model;
          Alcotest.test_case "validation" `Quick test_phases_validation;
        ] );
      ( "configs",
        [
          Alcotest.test_case "layouts" `Quick test_configs_layouts;
          Alcotest.test_case "platform cores" `Quick test_configs_platform_cores;
          Alcotest.test_case "3d platform" `Quick test_configs_platform_3d;
        ] );
    ]
