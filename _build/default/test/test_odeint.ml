(* Tests for the ODE integrators, including cross-validation against
   closed-form solutions of linear systems. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat

let check_close tol = Alcotest.(check (float tol))

(* dy/dt = -y, y(0) = 1  =>  y(t) = e^{-t}. *)
let decay _t (y : Vec.t) = [| -.y.(0) |]

let test_rk4_exponential_decay () =
  let y = Odeint.Rk4.integrate decay ~t0:0. ~t1:2. ~dt:0.01 [| 1. |] in
  check_close 1e-8 "e^-2" (exp (-2.)) y.(0)

let test_rk4_polynomial_exact () =
  (* RK4 integrates quartics' derivatives (cubics) exactly:
     dy/dt = t^3, y(0)=0 => y(1) = 1/4 with any step count. *)
  let f t _ = [| t *. t *. t |] in
  let y = Odeint.Rk4.integrate f ~t0:0. ~t1:1. ~dt:0.25 [| 0. |] in
  check_close 1e-12 "quartic exact" 0.25 y.(0)

let test_rk4_harmonic_oscillator () =
  (* y'' = -y as a 2d system; energy must be conserved to O(dt^4). *)
  let f _ (y : Vec.t) = [| y.(1); -.y.(0) |] in
  let y = Odeint.Rk4.integrate f ~t0:0. ~t1:(2. *. Float.pi) ~dt:1e-3 [| 1.; 0. |] in
  check_close 1e-9 "returns to start (pos)" 1. y.(0);
  check_close 1e-9 "returns to start (vel)" 0. y.(1)

let test_rk4_trajectory_endpoints () =
  let tr = Odeint.Rk4.trajectory decay ~t0:0. ~t1:1. ~dt:0.1 [| 1. |] in
  let t_first, y_first = List.hd tr in
  let t_last, y_last = List.nth tr (List.length tr - 1) in
  check_close 1e-12 "starts at t0" 0. t_first;
  check_close 1e-12 "initial state" 1. y_first.(0);
  check_close 1e-9 "ends at t1" 1. t_last;
  check_close 1e-5 "final state" (exp (-1.)) y_last.(0)

let test_rk4_partial_last_step () =
  (* t1 - t0 not a multiple of dt: final step must shorten. *)
  let y = Odeint.Rk4.integrate decay ~t0:0. ~t1:0.95 ~dt:0.3 [| 1. |] in
  check_close 1e-4 "lands exactly on t1" (exp (-0.95)) y.(0)

let test_rk4_invalid_args () =
  Alcotest.check_raises "t1 < t0" (Invalid_argument "Rk4.integrate: t1 < t0") (fun () ->
      ignore (Odeint.Rk4.integrate decay ~t0:1. ~t1:0. ~dt:0.1 [| 1. |]));
  Alcotest.check_raises "dt <= 0" (Invalid_argument "Rk4.integrate: dt <= 0") (fun () ->
      ignore (Odeint.Rk4.integrate decay ~t0:0. ~t1:1. ~dt:0. [| 1. |]))

let test_rkf45_decay () =
  let y, stats = Odeint.Rkf45.integrate decay ~t0:0. ~t1:3. ~tol:1e-10 [| 1. |] in
  check_close 1e-8 "e^-3" (exp (-3.)) y.(0);
  Alcotest.(check bool) "took steps" true (stats.Odeint.Rkf45.steps > 0)

let test_rkf45_adapts_step () =
  (* A stiff-ish decay: the adaptive integrator should use far fewer
     steps at loose tolerance than at tight tolerance. *)
  let f _ (y : Vec.t) = [| -50. *. y.(0) |] in
  let _, loose = Odeint.Rkf45.integrate f ~t0:0. ~t1:1. ~tol:1e-4 [| 1. |] in
  let _, tight = Odeint.Rkf45.integrate f ~t0:0. ~t1:1. ~tol:1e-12 [| 1. |] in
  Alcotest.(check bool) "tight tolerance costs more steps" true
    (tight.Odeint.Rkf45.steps > loose.Odeint.Rkf45.steps)

let test_rkf45_matches_rk4 () =
  let f _ (y : Vec.t) = [| y.(1); -2. *. y.(0) -. (0.5 *. y.(1)) |] in
  let y_rk4 = Odeint.Rk4.integrate f ~t0:0. ~t1:4. ~dt:1e-4 [| 1.; 0. |] in
  let y_rkf, _ = Odeint.Rkf45.integrate f ~t0:0. ~t1:4. ~tol:1e-12 [| 1.; 0. |] in
  check_close 1e-7 "damped oscillator pos" y_rk4.(0) y_rkf.(0);
  check_close 1e-7 "damped oscillator vel" y_rk4.(1) y_rkf.(1)

let test_linear_exact_matches_rk4 () =
  let a = Mat.of_rows [| [| -2.; 0.5 |]; [| 0.5; -3. |] |] in
  let b = [| 1.; 2. |] in
  let f _ y = Vec.add (Mat.matvec a y) b in
  let stepper = Odeint.Linear_exact.prepare a b 0.4 in
  let y0 = [| 5.; -1. |] in
  let exact = Odeint.Linear_exact.step stepper y0 in
  let numeric = Odeint.Rk4.integrate f ~t0:0. ~t1:0.4 ~dt:1e-4 y0 in
  Alcotest.(check bool) "exact LTI step = dense RK4" true
    (Vec.approx_equal ~tol:1e-9 exact numeric)

let test_linear_exact_fixed_point () =
  let a = Mat.of_rows [| [| -1.; 0. |]; [| 0.; -4. |] |] in
  let b = [| 2.; 8. |] in
  let stepper = Odeint.Linear_exact.prepare a b 1.0 in
  let fp = Odeint.Linear_exact.fixed_point stepper in
  Alcotest.(check bool) "fixed point = -A^-1 b" true
    (Vec.approx_equal ~tol:1e-12 [| 2.; 2. |] fp);
  (* Stepping from the fixed point stays there. *)
  Alcotest.(check bool) "fixed point is invariant" true
    (Vec.approx_equal ~tol:1e-12 fp (Odeint.Linear_exact.step stepper fp))

let test_linear_exact_convergence () =
  let a = Mat.of_rows [| [| -3.; 1. |]; [| 1.; -2. |] |] in
  let b = [| 1.; 1. |] in
  let stepper = Odeint.Linear_exact.prepare a b 0.5 in
  let fp = Odeint.Linear_exact.fixed_point stepper in
  let y = ref [| 10.; -10. |] in
  for _ = 1 to 100 do
    y := Odeint.Linear_exact.step stepper !y
  done;
  Alcotest.(check bool) "iterated step converges to fixed point" true
    (Vec.approx_equal ~tol:1e-9 fp !y)

let prop_rk4_linear_matches_expm =
  QCheck.Test.make ~name:"rk4 matches matrix exponential on random stable systems"
    ~count:40
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 4 in
          let* entries = array_size (return (n * n)) (float_bound_inclusive 1.) in
          let* y0 = array_size (return n) (float_bound_inclusive 5.) in
          return (n, entries, y0)))
    (fun (n, entries, y0) ->
      (* Stable A: random minus a dominant diagonal. *)
      let a =
        Mat.add_scaled_identity (-2. *. float_of_int n)
          (Mat.init n n (fun i j -> entries.((i * n) + j)))
      in
      let f _ y = Mat.matvec a y in
      let numeric = Odeint.Rk4.integrate f ~t0:0. ~t1:0.5 ~dt:1e-3 y0 in
      let exact = Mat.matvec (Linalg.Expm.expm_scaled a 0.5) y0 in
      Vec.dist_inf numeric exact < 1e-6)

let () =
  Alcotest.run "odeint"
    [
      ( "rk4",
        [
          Alcotest.test_case "exponential decay" `Quick test_rk4_exponential_decay;
          Alcotest.test_case "polynomial exact" `Quick test_rk4_polynomial_exact;
          Alcotest.test_case "harmonic oscillator" `Quick test_rk4_harmonic_oscillator;
          Alcotest.test_case "trajectory endpoints" `Quick test_rk4_trajectory_endpoints;
          Alcotest.test_case "partial last step" `Quick test_rk4_partial_last_step;
          Alcotest.test_case "invalid arguments" `Quick test_rk4_invalid_args;
        ] );
      ( "rkf45",
        [
          Alcotest.test_case "decay" `Quick test_rkf45_decay;
          Alcotest.test_case "step adaptation" `Quick test_rkf45_adapts_step;
          Alcotest.test_case "matches rk4" `Quick test_rkf45_matches_rk4;
        ] );
      ( "linear_exact",
        [
          Alcotest.test_case "matches rk4" `Quick test_linear_exact_matches_rk4;
          Alcotest.test_case "fixed point" `Quick test_linear_exact_fixed_point;
          Alcotest.test_case "convergence" `Quick test_linear_exact_convergence;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_rk4_linear_matches_expm ]);
    ]
