(* Property-based validation of the paper's Theorems 1-5 and Lemma 1 on
   randomly generated schedules, plus the Fig. 2 counterexample.

   These are the load-bearing claims of the paper; each test states the
   theorem it checks. *)

module S = Sched.Schedule
module Peak = Sched.Peak
module Matex = Thermal.Matex

let pm = Power.Power_model.default
let levels5 = Power.Vf.table_iv 5
let levels2 = Power.Vf.table_iv 2

let model_of_cores n =
  let rows, cols = Workload.Configs.layout_of_cores n in
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows ~cols ~core_width:4e-3 ~core_height:4e-3)

let model2 = model_of_cores 2
let model3 = model_of_cores 3

let seed_gen = QCheck.(make Gen.(int_range 0 1_000_000))

(* -------------------------------------------------------------- Theorem 1
   The peak temperature of a periodic step-up schedule in the thermal
   stable status occurs at the end of the period.

   Reproduction note: with strong lateral coupling this holds only
   approximately — a constant-high core develops a small interior hump
   while a late-stepping neighbour's residual heat decays (worst observed
   over 3000 random schedules: ~0.6 C absolute, ~2% of the rise over
   ambient; < 0.05 C on AO-shaped schedules).  We assert the violation
   stays below 3% of the rise (+0.05 C slack); see EXPERIMENTS.md. *)

let prop_theorem1 ~model ~n_cores ~period =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "T1: step-up peak at period end (%d cores, %gs period)" n_cores
         period)
    ~count:60 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s =
        Workload.Random_sched.step_up rng ~n_cores ~period ~max_intervals:4
          ~levels:levels5
      in
      let end_peak = Peak.of_step_up model pm s in
      let scan_peak = Peak.of_any model pm ~samples_per_segment:48 s in
      let rise = end_peak -. Thermal.Model.ambient model in
      scan_peak <= end_peak +. (0.03 *. rise) +. 0.05)

(* -------------------------------------------------------------- Theorem 2
   The step-up reordering of an arbitrary periodic schedule upper-bounds
   its stable-status peak temperature.

   Reproduction note: like Theorem 1 this is exact for weak coupling but
   only approximate for our strongly-coupled model (~2% of the rise over
   ambient at worst).  Asserted with the same relative tolerance as
   Theorem 1. *)

let prop_theorem2 ~model ~n_cores ~period =
  QCheck.Test.make
    ~name:
      (Printf.sprintf "T2: step-up reorder bounds arbitrary peaks (%d cores)" n_cores)
    ~count:60 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s =
        Workload.Random_sched.arbitrary rng ~n_cores ~period ~max_intervals:4
          ~levels:levels5
      in
      let arbitrary_peak = Peak.of_any model pm ~samples_per_segment:48 s in
      let bound = Peak.of_any model pm ~samples_per_segment:48 (Sched.Stepup.reorder s) in
      let rise = bound -. Thermal.Model.ambient model in
      arbitrary_peak <= bound +. (0.03 *. rise) +. 0.05)

(* -------------------------------------------------------------- Theorem 3
   Among equal-throughput step-up schedules, the constant-speed one has
   the lowest stable-status peak. *)

let prop_theorem3 =
  QCheck.Test.make ~name:"T3: constant speed beats equal-work two-mode" ~count:80
    QCheck.(
      make
        Gen.(
          let* x = float_range 0.05 0.95 in
          let* v_low = float_range 0.6 0.9 in
          let* v_high = float_range 1.0 1.3 in
          let* period = float_range 0.01 1.0 in
          return (x, v_low, v_high, period)))
    (fun (x, v_low, v_high, period) ->
      let v_e = (x *. v_low) +. ((1. -. x) *. v_high) in
      (* Core 0 varies; the others idle (the theorem's setup). *)
      let constant = S.uniform ~period [| v_e; 0.; 0. |] in
      let two_mode =
        S.make ~period
          [|
            [
              { S.duration = x *. period; voltage = v_low };
              { S.duration = (1. -. x) *. period; voltage = v_high };
            ];
            [ { S.duration = period; voltage = 0. } ];
            [ { S.duration = period; voltage = 0. } ];
          |]
      in
      Peak.of_step_up model3 pm constant
      <= Peak.of_step_up model3 pm two_mode +. 1e-6)

(* -------------------------------------------------------------- Theorem 4
   Using the two *neighbouring* modes gives a lower peak than any wider
   equal-work mode pair. *)

let prop_theorem4 =
  QCheck.Test.make ~name:"T4: neighbouring modes beat wider pairs" ~count:80
    QCheck.(
      make
        Gen.(
          let* v_e = float_range 0.82 0.98 in
          let* period = float_range 0.02 0.5 in
          return (v_e, period)))
    (fun (v_e, period) ->
      (* Neighbours of v_e in Table IV's 5-level set are 0.8/1.0; the wide
         pair is 0.6/1.3.  Both complete the same work v_e * period. *)
      let two_mode ~v_low ~v_high =
        let r_high = (v_e -. v_low) /. (v_high -. v_low) in
        S.make ~period
          [|
            [
              { S.duration = (1. -. r_high) *. period; voltage = v_low };
              { S.duration = r_high *. period; voltage = v_high };
            ];
            [ { S.duration = period; voltage = 0. } ];
            [ { S.duration = period; voltage = 0. } ];
          |]
      in
      let narrow = Peak.of_step_up model3 pm (two_mode ~v_low:0.8 ~v_high:1.0) in
      let wide = Peak.of_step_up model3 pm (two_mode ~v_low:0.6 ~v_high:1.3) in
      narrow <= wide +. 1e-6)

(* -------------------------------------------------------------- Theorem 5
   For a step-up schedule, the stable-status peak is monotone
   non-increasing in the oscillation count m. *)

let prop_theorem5 ~model ~n_cores =
  QCheck.Test.make
    ~name:(Printf.sprintf "T5: peak monotone non-increasing in m (%d cores)" n_cores)
    ~count:40 seed_gen
    (fun seed ->
      let rng = Random.State.make [| seed |] in
      let s =
        Workload.Random_sched.step_up rng ~n_cores ~period:2.0 ~max_intervals:5
          ~levels:levels2
      in
      let peak m = Peak.of_step_up model pm (Sched.Oscillate.oscillate m s) in
      let rec monotone m prev =
        if m > 6 then true
        else
          let p = peak m in
          (* Same coupling caveat as Theorem 1: allow a 0.05 C ripple. *)
          p <= prev +. 0.05 && monotone (m + 1) p
      in
      monotone 2 (peak 1))

(* ------------------------------------------- Theorem 3's scalar lemma
   The proof's final step (Eq. 10) reduces to the scalar inequality
   Upsilon(w) = (1 - e^{-lambda w}) / (1 - e^{-lambda}) - w >= 0 for
   w in [0, 1], lambda >= 0 — concavity plus the two roots at 0 and 1.
   We check it directly, including the boundary cases. *)

let prop_theorem3_scalar_lemma =
  QCheck.Test.make ~name:"T3 scalar lemma: Upsilon(w) >= 0 on [0,1]" ~count:500
    QCheck.(
      make
        Gen.(
          let* w = float_bound_inclusive 1. in
          let* lambda = float_range 1e-3 50. in
          return (w, lambda)))
    (fun (w, lambda) ->
      let upsilon =
        ((1. -. exp (-.lambda *. w)) /. (1. -. exp (-.lambda))) -. w
      in
      upsilon >= -1e-12)

let test_theorem3_scalar_lemma_roots () =
  List.iter
    (fun lambda ->
      let upsilon w = ((1. -. exp (-.lambda *. w)) /. (1. -. exp (-.lambda))) -. w in
      Alcotest.(check (float 1e-12)) "root at 0" 0. (upsilon 0.);
      Alcotest.(check (float 1e-9)) "root at 1" 0. (upsilon 1.);
      Alcotest.(check bool) "strictly positive inside" true (upsilon 0.5 > 0.))
    [ 0.1; 1.; 10. ]

(* --------------------------------------------------------------- Lemma 1
   Exchanging a (low, high) segment pair into (high, low) — segments
   moving WITH their durations, so the workload is preserved — can only
   lower the stable end-of-period temperature, element-wise: the later
   the high segment, the hotter the period boundary.

   Erratum note: the paper prints the inequality as
   T_ss(S(t_p)) <= T_ss(S~(t_p)) with S = low-first, which contradicts
   its own reading ("as a high-speed interval moves toward the end ... it
   tends to increase the temperature at the end"); the prose direction is
   the one Theorem 2's step-up bound needs, holds exactly in our model,
   and is what we assert. *)

let prop_lemma1 =
  QCheck.Test.make ~name:"L1: moving the high interval later heats the period end"
    ~count:100
    QCheck.(
      make
        Gen.(
          let* d1 = float_range 0.05 0.6 in
          let* d2 = float_range 0.05 0.6 in
          let* v_low = float_range 0.6 0.9 in
          let* v_high = float_range 1.0 1.3 in
          let* v_other = float_range 0.6 1.3 in
          return (d1, d2, v_low, v_high, v_other)))
    (fun (d1, d2, v_low, v_high, v_other) ->
      let psi_other = Power.Power_model.psi pm v_other in
      let seg d v =
        { Matex.duration = d; psi = [| Power.Power_model.psi pm v; psi_other |] }
      in
      let low_first = Matex.stable_start model2 [ seg d1 v_low; seg d2 v_high ] in
      let high_first = Matex.stable_start model2 [ seg d2 v_high; seg d1 v_low ] in
      Linalg.Vec.leq high_first (Linalg.Vec.add low_first (Linalg.Vec.create 2 1e-9)))

(* ------------------------------------------------------- Fig. 2 example
   Oscillating only one core does not necessarily reduce the peak — the
   paper's two-core counterexample. *)

let test_fig2_single_core_oscillation () =
  let seg d v = { S.duration = d; voltage = v } in
  let base =
    S.make ~period:0.1
      [| [ seg 0.05 1.3; seg 0.05 0.6 ]; [ seg 0.05 0.6; seg 0.05 1.3 ] |]
  in
  let core1_doubled =
    S.make ~period:0.1
      [|
        [ seg 0.025 1.3; seg 0.025 0.6; seg 0.025 1.3; seg 0.025 0.6 ];
        [ seg 0.05 0.6; seg 0.05 1.3 ];
      |]
  in
  let both_doubled = Sched.Oscillate.oscillate 2 base in
  let peak s = Peak.of_any model2 pm ~samples_per_segment:64 s in
  let p_base = peak base and p_single = peak core1_doubled and p_both = peak both_doubled in
  Alcotest.(check bool) "single-core oscillation does not reduce the peak" true
    (p_single >= p_base -. 1e-3);
  Alcotest.(check bool) "whole-chip oscillation does reduce the peak" true
    (p_both < p_base -. 0.1)

(* A deterministic instance of Theorem 2 mirroring Fig. 3: the aligned
   (x2 = x3 = half-period) schedule is the hottest of the phase grid. *)

let test_fig3_alignment_is_worst_case () =
  let peak_of_offsets offsets =
    let s =
      Workload.Random_sched.phase_grid ~n_cores:3 ~period:6. ~v_low:0.6 ~v_high:1.3
        ~offsets
    in
    Peak.of_any model3 pm ~samples_per_segment:32 s
  in
  let aligned = peak_of_offsets [| 3.; 3.; 3. |] in
  List.iter
    (fun offsets ->
      Alcotest.(check bool) "aligned schedule is hottest" true
        (peak_of_offsets offsets <= aligned +. 1e-6))
    [ [| 3.; 0.6; 4.2 |]; [| 3.; 1.5; 4.5 |]; [| 3.; 0.; 3. |]; [| 3.; 5.4; 1.2 |] ]

let () =
  Alcotest.run "theorems"
    [
      ( "theorem 1",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_theorem1 ~model:model2 ~n_cores:2 ~period:0.4;
            prop_theorem1 ~model:model3 ~n_cores:3 ~period:1.0;
          ] );
      ( "theorem 2",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_theorem2 ~model:model2 ~n_cores:2 ~period:0.4;
            prop_theorem2 ~model:model3 ~n_cores:3 ~period:1.0;
          ] );
      ("theorem 3", [ QCheck_alcotest.to_alcotest prop_theorem3 ]);
      ("theorem 4", [ QCheck_alcotest.to_alcotest prop_theorem4 ]);
      ( "theorem 5",
        List.map QCheck_alcotest.to_alcotest
          [ prop_theorem5 ~model:model2 ~n_cores:2; prop_theorem5 ~model:model3 ~n_cores:3 ]
      );
      ("lemma 1", [ QCheck_alcotest.to_alcotest prop_lemma1 ]);
      ( "theorem 3 scalar lemma",
        [
          QCheck_alcotest.to_alcotest prop_theorem3_scalar_lemma;
          Alcotest.test_case "roots and interior" `Quick test_theorem3_scalar_lemma_roots;
        ] );
      ( "counterexamples",
        [
          Alcotest.test_case "Fig 2: single-core oscillation" `Quick
            test_fig2_single_core_oscillation;
          Alcotest.test_case "Fig 3: alignment worst case" `Quick
            test_fig3_alignment_is_worst_case;
        ] );
    ]
