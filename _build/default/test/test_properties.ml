(* Cross-cutting property-based tests on schedule transforms, the
   thermal algebra and energy accounting — invariants that must hold for
   ANY randomly generated instance, not just the curated unit cases. *)

module S = Sched.Schedule
module Vec = Linalg.Vec

let pm = Power.Power_model.default
let levels5 = Power.Vf.table_iv 5

let model3 =
  Thermal.Hotspot.core_level
    (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let seed_gen = QCheck.(make Gen.(int_range 0 1_000_000))

let random_schedule seed =
  let rng = Random.State.make [| seed |] in
  Workload.Random_sched.arbitrary rng ~n_cores:3 ~period:0.3 ~max_intervals:5
    ~levels:levels5

(* --------------------------------------------------------- schedule laws *)

let prop_state_intervals_cover_period =
  QCheck.Test.make ~name:"state intervals partition the period" ~count:200 seed_gen
    (fun seed ->
      let s = random_schedule seed in
      let intervals = S.state_intervals s in
      let total = List.fold_left (fun acc (d, _) -> acc +. d) 0. intervals in
      Float.abs (total -. S.period s) < 1e-9
      && List.for_all (fun (d, _) -> d > 0.) intervals)

let prop_state_intervals_match_voltage_at =
  QCheck.Test.make ~name:"state intervals agree with voltage_at" ~count:100 seed_gen
    (fun seed ->
      let s = random_schedule seed in
      let ok = ref true in
      let at = ref 0. in
      List.iter
        (fun (d, voltages) ->
          let mid = !at +. (d /. 2.) in
          Array.iteri
            (fun i v -> if Float.abs (S.voltage_at s i mid -. v) > 1e-12 then ok := false)
            voltages;
          at := !at +. d)
        (S.state_intervals s);
      !ok)

let prop_shift_preserves_throughput =
  QCheck.Test.make ~name:"shift preserves per-core work" ~count:200
    QCheck.(pair seed_gen (make Gen.(float_range 0. 0.3)))
    (fun (seed, offset) ->
      let s = random_schedule seed in
      let shifted = S.shift s 1 offset in
      Float.abs (Sched.Throughput.ideal s -. Sched.Throughput.ideal shifted) < 1e-9)

let prop_oscillate_composes =
  QCheck.Test.make ~name:"oscillate m1*m2 = oscillate m1 . oscillate m2" ~count:100
    QCheck.(triple seed_gen (make Gen.(int_range 1 5)) (make Gen.(int_range 1 5)))
    (fun (seed, m1, m2) ->
      let s = random_schedule seed in
      S.equal ~tol:1e-15
        (Sched.Oscillate.oscillate (m1 * m2) s)
        (Sched.Oscillate.oscillate m1 (Sched.Oscillate.oscillate m2 s)))

let prop_oscillate_preserves_throughput =
  QCheck.Test.make ~name:"oscillate preserves ideal throughput" ~count:100
    QCheck.(pair seed_gen (make Gen.(int_range 1 16)))
    (fun (seed, m) ->
      let s = random_schedule seed in
      Float.abs
        (Sched.Throughput.ideal s
        -. Sched.Throughput.ideal (Sched.Oscillate.oscillate m s))
      < 1e-9)

let prop_reorder_idempotent =
  QCheck.Test.make ~name:"step-up reorder is idempotent" ~count:200 seed_gen
    (fun seed ->
      let s = random_schedule seed in
      let once = Sched.Stepup.reorder s in
      S.equal ~tol:1e-12 once (Sched.Stepup.reorder once))

let prop_reorder_preserves_work =
  QCheck.Test.make ~name:"step-up reorder preserves per-core work" ~count:200 seed_gen
    (fun seed ->
      let s = random_schedule seed in
      let r = Sched.Stepup.reorder s in
      let work sched = Sched.Throughput.per_core ~tau:0. sched in
      Vec.approx_equal ~tol:1e-9 (work s) (work r))

let prop_serialization_round_trip =
  QCheck.Test.make ~name:"to_string/of_string round trip" ~count:200 seed_gen
    (fun seed ->
      let s = random_schedule seed in
      S.equal ~tol:0. s (S.of_string (S.to_string s)))

(* --------------------------------------------------------- thermal laws *)

let prop_thermal_reciprocity =
  QCheck.Test.make ~name:"steady response is reciprocal (G'^-1 symmetric)" ~count:50
    QCheck.(pair (make Gen.(int_range 0 2)) (make Gen.(int_range 0 2)))
    (fun (i, j) ->
      let unit k =
        let p = Array.make 3 0. in
        p.(k) <- 1.;
        p
      in
      let base = Thermal.Model.steady_core_temps model3 (Array.make 3 0.) in
      let ti = Thermal.Model.steady_core_temps model3 (unit i) in
      let tj = Thermal.Model.steady_core_temps model3 (unit j) in
      Float.abs ((ti.(j) -. base.(j)) -. (tj.(i) -. base.(i))) < 1e-9)

let prop_stable_rotation_invariance =
  (* Rotating a periodic profile by one segment rotates its stable
     boundary states: theta*_rot(0) = theta*(t_1). *)
  QCheck.Test.make ~name:"stable status commutes with profile rotation" ~count:60
    seed_gen
    (fun seed ->
      let s = random_schedule seed in
      let profile = Sched.Peak.profile model3 pm s in
      match profile with
      | [] | [ _ ] -> true
      | first :: rest ->
          let rotated = rest @ [ first ] in
          let boundaries = Thermal.Matex.stable_boundaries model3 profile in
          let rotated_start = Thermal.Matex.stable_start model3 rotated in
          Vec.approx_equal ~tol:1e-7 boundaries.(1) rotated_start)

let prop_superposition =
  (* The theta-space response is affine in the power vector. *)
  QCheck.Test.make ~name:"steady state is affine in power" ~count:100
    QCheck.(
      make
        Gen.(
          let* a = array_size (return 3) (float_bound_inclusive 20.) in
          let* b = array_size (return 3) (float_bound_inclusive 20.) in
          let* w = float_bound_inclusive 1. in
          return (a, b, w)))
    (fun (a, b, w) ->
      let mix = Array.init 3 (fun i -> (w *. a.(i)) +. ((1. -. w) *. b.(i))) in
      let t v = Thermal.Model.theta_inf model3 v in
      let lhs = t mix in
      let rhs = Vec.add (Vec.scale w (t a)) (Vec.scale (1. -. w) (t b)) in
      (* theta_inf is affine, not linear (the beta*T_amb input), but the
         convex combination keeps the affine part intact. *)
      Vec.approx_equal ~tol:1e-8 lhs rhs)

(* ---------------------------------------------------------- energy laws *)

let prop_energy_bounds =
  QCheck.Test.make ~name:"energy between leakage floor and peak-power cap" ~count:60
    seed_gen
    (fun seed ->
      let s = random_schedule seed in
      let b = Sched.Energy.per_period model3 pm s in
      let beta = Thermal.Model.leak_beta model3 in
      let avg = Sched.Energy.average_power b in
      (* Lower bound: dynamic + leakage at ambient.  Upper bound: dynamic
         + leakage at a generous 150 C. *)
      let dyn_rate = b.Sched.Energy.dynamic /. b.Sched.Energy.period in
      avg >= dyn_rate +. (3. *. beta *. 35.) -. 1e-9
      && avg <= dyn_rate +. (3. *. beta *. 150.))

let prop_energy_additive_under_oscillation =
  (* m-oscillation leaves the per-period-fraction energy almost unchanged
     (identical psi integral; leakage differs only through the slightly
     different temperature trajectory). *)
  QCheck.Test.make ~name:"oscillation changes energy only via leakage" ~count:40
    seed_gen
    (fun seed ->
      let s = Sched.Stepup.reorder (random_schedule seed) in
      let rate sched =
        Sched.Energy.average_power (Sched.Energy.per_period model3 pm sched)
      in
      Float.abs (rate s -. rate (Sched.Oscillate.oscillate 4 s)) < 0.2)

let () =
  Alcotest.run "properties"
    [
      ( "schedule",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_state_intervals_cover_period;
            prop_state_intervals_match_voltage_at;
            prop_shift_preserves_throughput;
            prop_oscillate_composes;
            prop_oscillate_preserves_throughput;
            prop_reorder_idempotent;
            prop_reorder_preserves_work;
            prop_serialization_round_trip;
          ] );
      ( "thermal",
        List.map QCheck_alcotest.to_alcotest
          [ prop_thermal_reciprocity; prop_stable_rotation_invariance; prop_superposition ]
      );
      ( "energy",
        List.map QCheck_alcotest.to_alcotest
          [ prop_energy_bounds; prop_energy_additive_under_oscillation ] );
    ]
