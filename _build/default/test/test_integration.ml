(* End-to-end integration tests: the full policy pipeline on the paper's
   platforms, cross-model validation, and the util helpers the benches
   rely on. *)

let check_close tol = Alcotest.(check (float tol))

(* ------------------------------------------------- policy pipeline, 2..3 *)

let run_all ~cores ~levels ~t_max =
  let p = Workload.Configs.platform ~cores ~levels ~t_max in
  let lns = Core.Lns.solve p in
  let exs = Core.Exs.solve p in
  let ao = Core.Ao.solve p in
  let pco = Core.Pco.solve p in
  (p, lns, exs, ao, pco)

let test_policy_ordering_2core () =
  let p, lns, exs, ao, pco = run_all ~cores:2 ~levels:2 ~t_max:65. in
  Alcotest.(check bool) "LNS <= EXS" true
    (lns.Core.Lns.throughput <= exs.Core.Exs.throughput +. 1e-9);
  Alcotest.(check bool) "LNS <= AO" true
    (lns.Core.Lns.throughput <= ao.Core.Ao.throughput +. 1e-9);
  Alcotest.(check bool) "AO <= PCO + eps" true
    (ao.Core.Ao.throughput <= pco.Core.Pco.throughput +. 1e-6);
  Alcotest.(check bool) "all peaks below T_max" true
    (lns.Core.Lns.peak <= p.Core.Platform.t_max +. 1e-6
    && exs.Core.Exs.peak <= p.Core.Platform.t_max +. 1e-6
    && ao.Core.Ao.peak <= p.Core.Platform.t_max +. 1e-6
    && pco.Core.Pco.peak <= p.Core.Platform.t_max +. 0.05)

let test_policy_ordering_3core_all_levels () =
  List.iter
    (fun levels ->
      let _, lns, exs, ao, _ = run_all ~cores:3 ~levels ~t_max:65. in
      Alcotest.(check bool)
        (Printf.sprintf "EXS >= LNS (%d levels)" levels)
        true
        (exs.Core.Exs.throughput >= lns.Core.Lns.throughput -. 1e-9);
      Alcotest.(check bool)
        (Printf.sprintf "AO >= LNS (%d levels)" levels)
        true
        (ao.Core.Ao.throughput >= lns.Core.Lns.throughput -. 1e-9))
    [ 2; 3; 4; 5 ]

let test_gap_shrinks_with_levels () =
  (* Fig. 6's headline: AO's edge over EXS shrinks as levels grow. *)
  let gap levels =
    let _, _, exs, ao, _ = run_all ~cores:3 ~levels ~t_max:65. in
    ao.Core.Ao.throughput -. exs.Core.Exs.throughput
  in
  Alcotest.(check bool) "gap(2 levels) > gap(5 levels)" true (gap 2 > gap 5)

let test_throughput_monotone_in_tmax () =
  (* Fig. 7's shape: higher T_max, higher throughput, for every policy. *)
  let at t_max =
    let _, lns, exs, ao, _ = run_all ~cores:3 ~levels:2 ~t_max in
    (lns.Core.Lns.throughput, exs.Core.Exs.throughput, ao.Core.Ao.throughput)
  in
  let l50, e50, a50 = at 50. in
  let l65, e65, a65 = at 65. in
  Alcotest.(check bool) "LNS monotone" true (l65 >= l50 -. 1e-9);
  Alcotest.(check bool) "EXS monotone" true (e65 >= e50 -. 1e-9);
  Alcotest.(check bool) "AO monotone" true (a65 >= a50 -. 1e-9)

let test_ao_schedule_verified_by_dense_scan () =
  (* The AO pipeline trusts Theorem 1; double-check its final schedule
     against the dense scanner on the full thermal model. *)
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65. in
  let ao = Core.Ao.solve p in
  let scan =
    Sched.Peak.of_any p.Core.Platform.model p.Core.Platform.power
      ~samples_per_segment:64 ao.Core.Ao.schedule
  in
  Alcotest.(check bool) "dense scan confirms T_max" true
    (scan <= p.Core.Platform.t_max +. 0.05)

let test_six_core_pipeline () =
  (* One bigger platform exercised end to end (6 cores, 3 levels). *)
  let p, lns, exs, ao, _pco = run_all ~cores:6 ~levels:3 ~t_max:60. in
  Alcotest.(check int) "6 cores" 6 (Core.Platform.n_cores p);
  Alcotest.(check bool) "EXS >= LNS" true
    (exs.Core.Exs.throughput >= lns.Core.Lns.throughput -. 1e-9);
  Alcotest.(check bool) "AO feasible" true (ao.Core.Ao.peak <= 60. +. 1e-6);
  Alcotest.(check bool) "AO >= LNS" true
    (ao.Core.Ao.throughput >= lns.Core.Lns.throughput -. 1e-9)

let test_3d_platform_pipeline () =
  (* The 3D stack runs the same pipeline; upper-layer cores are hotter so
     the ideal solve must assign them lower voltages. *)
  let p = Workload.Configs.platform_3d ~layers:2 ~rows:1 ~cols:2 ~levels:2 ~t_max:65. in
  let ideal = Core.Ideal.solve p in
  let v = ideal.Core.Ideal.voltages in
  (* Cores 0,1 are on the package-attached layer; 2,3 stacked above. *)
  Alcotest.(check bool) "stacked cores run slower" true (v.(2) < v.(0) && v.(3) < v.(1));
  let ao = Core.Ao.solve p in
  Alcotest.(check bool) "AO meets constraint on 3D" true (ao.Core.Ao.peak <= 65. +. 1e-6)

let test_sixteen_core_stress () =
  (* Beyond the paper's largest (9-core) platform: a 4x4 mesh end to end.
     Checks scaling sanity, not paper numbers. *)
  let p =
    Core.Platform.grid ~rows:4 ~cols:4 ~levels:(Power.Vf.table_iv 3) ~t_max:55. ()
  in
  Alcotest.(check int) "16 cores" 16 (Core.Platform.n_cores p);
  let ao, elapsed = Util.Timer.time_it (fun () -> Core.Ao.solve p) in
  Alcotest.(check bool) "feasible" true (ao.Core.Ao.peak <= 55. +. 1e-6);
  Alcotest.(check bool) "beats LNS" true
    (ao.Core.Ao.throughput >= (Core.Lns.solve p).Core.Lns.throughput -. 1e-9);
  Alcotest.(check bool) "solves in reasonable time" true (elapsed < 30.);
  (* Interior cores are hotter, so the ideal solve must slow them down. *)
  let ideal = Core.Ideal.solve p in
  let v = ideal.Core.Ideal.voltages in
  (* Corner core (0,0) = index 0; interior core (1,1) = index 5. *)
  Alcotest.(check bool) "corner faster than interior" true (v.(0) > v.(5))

(* ----------------------------------------------- cross-model validation *)

let test_ao_schedule_on_layered_model () =
  (* Run AO against the core-level model, then re-evaluate its schedule on
     the finer layered network: the peak should agree within a couple of
     degrees, showing that the core-level lumping is sound. *)
  let fp = Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3 in
  let p = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65. in
  let ao = Core.Ao.solve p in
  let layered = Thermal.Hotspot.layered fp in
  let layered_peak =
    Sched.Peak.of_any layered p.Core.Platform.power ~samples_per_segment:32
      ao.Core.Ao.schedule
  in
  Alcotest.(check bool) "layered model within 8C of core-level" true
    (Float.abs (layered_peak -. ao.Core.Ao.peak) < 8.)

let test_stable_status_vs_transient_sim () =
  (* The whole pipeline rests on Eq. (4); verify it against a brute-force
     multi-period transient of the AO schedule. *)
  let p = Workload.Configs.platform ~cores:2 ~levels:2 ~t_max:60. in
  let ao = Core.Ao.solve p in
  let profile =
    Sched.Peak.profile p.Core.Platform.model p.Core.Platform.power ao.Core.Ao.schedule
  in
  let periods =
    Thermal.Trace.periods_to_stable p.Core.Platform.model ~tol:1e-9 profile
  in
  let trace =
    Thermal.Trace.from_ambient p.Core.Platform.model ~periods:(periods + 5)
      ~samples_per_segment:8 profile
  in
  let last_period_peak =
    (* Only inspect the tail (stable) period of the warm-up trace. *)
    let t_end = trace.(Array.length trace - 1).Thermal.Trace.time in
    let period = Thermal.Matex.period profile in
    Array.fold_left
      (fun acc s ->
        if s.Thermal.Trace.time >= t_end -. period then
          Float.max acc (Linalg.Vec.max s.Thermal.Trace.core_temps)
        else acc)
      neg_infinity trace
  in
  check_close 0.05 "warm-up converges to the analytic stable peak" ao.Core.Ao.peak
    last_period_peak

(* ------------------------------------------------------------------ util *)

let test_stats () =
  let s = Util.Stats.summarize [| 1.; 2.; 3.; 4. |] in
  check_close 1e-12 "mean" 2.5 s.Util.Stats.mean;
  check_close 1e-9 "stddev" (sqrt (5. /. 3.)) s.Util.Stats.stddev;
  check_close 1e-12 "min" 1. s.Util.Stats.min;
  check_close 1e-12 "max" 4. s.Util.Stats.max;
  check_close 1e-12 "median" 2.5 (Util.Stats.percentile [| 1.; 2.; 3.; 4. |] 50.);
  check_close 1e-9 "geomean" (Float.exp (Float.log 8. /. 3.))
    (Util.Stats.geometric_mean [| 1.; 2.; 4. |])

let test_timer () =
  let x, elapsed = Util.Timer.time_it (fun () -> 42) in
  Alcotest.(check int) "result passed through" 42 x;
  Alcotest.(check bool) "non-negative time" true (elapsed >= 0.)

let test_csv_roundtrip () =
  let path = Filename.temp_file "fosc_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Util.Csv.write path ~header:[ "a"; "b" ] [ [ 1.; 2. ]; [ 3.; 4. ] ];
      let ic = open_in path in
      let lines = List.init 3 (fun _ -> input_line ic) in
      close_in ic;
      Alcotest.(check (list string)) "csv contents" [ "a,b"; "1,2"; "3,4" ] lines)

let test_csv_labelled () =
  let path = Filename.temp_file "fosc_test" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Util.Csv.write_labelled path ~header:[ "name"; "x" ] [ ("a", [ 1. ]); ("b", [ 2. ]) ];
      let ic = open_in path in
      let lines = List.init 3 (fun _ -> input_line ic) in
      close_in ic;
      Alcotest.(check (list string)) "labelled csv" [ "name,x"; "a,1"; "b,2" ] lines;
      Alcotest.(check bool) "arity enforced" true
        (match Util.Csv.write_labelled path ~header:[ "name"; "x" ] [ ("a", [ 1.; 2. ]) ] with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_stats_edges () =
  Alcotest.(check bool) "percentile out of range" true
    (match Util.Stats.percentile [| 1. |] 120. with
    | exception Invalid_argument _ -> true
    | _ -> false);
  check_close 1e-12 "single-element percentile" 1. (Util.Stats.percentile [| 1. |] 50.);
  check_close 1e-12 "single-element stddev" 0.
    (Util.Stats.summarize [| 3. |]).Util.Stats.stddev;
  Alcotest.(check bool) "geomean rejects non-positive" true
    (match Util.Stats.geometric_mean [| 1.; 0. |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_parallel_map_matches_sequential () =
  let xs = List.init 57 (fun i -> i) in
  let f x = (x * x) + 1 in
  Alcotest.(check (list int)) "same results, same order" (List.map f xs)
    (Util.Parallel.map ~domains:4 f xs);
  Alcotest.(check (list int)) "degenerate single domain" (List.map f xs)
    (Util.Parallel.map ~domains:1 f xs);
  Alcotest.(check (list int)) "empty input" [] (Util.Parallel.map ~domains:4 f [])

let test_parallel_map_propagates_exceptions () =
  Alcotest.(check bool) "exception propagates" true
    (match
       Util.Parallel.map ~domains:3
         (fun x -> if x = 5 then failwith "boom" else x)
         (List.init 10 (fun i -> i))
     with
    | exception Failure msg -> msg = "boom"
    | _ -> false)

let test_parallel_real_workload () =
  (* Policies built inside domains: exercises that the pipeline is safe
     to run concurrently. *)
  let results =
    Util.Parallel.map ~domains:4
      (fun cores ->
        let p = Workload.Configs.platform ~cores ~levels:2 ~t_max:60. in
        (Core.Lns.solve p).Core.Lns.throughput)
      [ 2; 3; 2; 3 ]
  in
  Alcotest.(check int) "all results back" 4 (List.length results);
  Alcotest.(check bool) "repeat configs agree" true
    (List.nth results 0 = List.nth results 2 && List.nth results 1 = List.nth results 3)

let test_table_renders () =
  let t = Util.Table.create [ "name"; "value" ] in
  Util.Table.add_row t [ "x"; "1" ];
  Util.Table.add_float_row t ~label:"y" [ 2.5 ];
  Alcotest.(check bool) "arity enforced" true
    (match Util.Table.add_row t [ "only-one" ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_svg_line_chart () =
  let svg =
    Util.Svg_plot.line_chart ~title:"t" ~x_label:"x" ~y_label:"y"
      [
        { Util.Svg_plot.label = "a"; points = [ (0., 1.); (1., 2.); (2., 1.5) ] };
        { Util.Svg_plot.label = "b"; points = [ (0., 0.); (2., 3.) ] };
      ]
  in
  let has s = String.length svg > 0 && String.length s > 0 &&
    (let found = ref false in
     let n = String.length svg and m = String.length s in
     for i = 0 to n - m do
       if String.sub svg i m = s then found := true
     done;
     !found)
  in
  Alcotest.(check bool) "svg root" true (has "<svg");
  Alcotest.(check bool) "two polylines" true (has "<polyline");
  Alcotest.(check bool) "legend labels" true (has ">a</text>" && has ">b</text>");
  Alcotest.(check bool) "closed document" true (has "</svg>")

let test_svg_line_chart_rejects_empty () =
  Alcotest.(check bool) "no data rejected" true
    (match
       Util.Svg_plot.line_chart ~title:"t" ~x_label:"x" ~y_label:"y"
         [ { Util.Svg_plot.label = "a"; points = [] } ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "non-finite rejected" true
    (match
       Util.Svg_plot.line_chart ~title:"t" ~x_label:"x" ~y_label:"y"
         [ { Util.Svg_plot.label = "a"; points = [ (0., Float.nan) ] } ]
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_svg_heatmap () =
  let cells =
    List.concat_map
      (fun i -> List.map (fun j -> (float_of_int i, float_of_int j, float_of_int (i + j)))
          [ 0; 1; 2 ])
      [ 0; 1; 2 ]
  in
  let svg = Util.Svg_plot.heatmap ~title:"h" ~x_label:"x" ~y_label:"y" cells in
  let count_rects =
    let n = ref 0 in
    let m = String.length svg in
    for i = 0 to m - 5 do
      if String.sub svg i 5 = "<rect" then incr n
    done;
    !n
  in
  (* 9 cells + background + frame + 2 legend swatches. *)
  Alcotest.(check int) "rect count" 13 count_rects;
  Alcotest.(check bool) "escaped title tooltips" true
    (String.length svg > 0)

let () =
  Alcotest.run "integration"
    [
      ( "pipeline",
        [
          Alcotest.test_case "2-core ordering" `Quick test_policy_ordering_2core;
          Alcotest.test_case "3-core all levels" `Quick test_policy_ordering_3core_all_levels;
          Alcotest.test_case "gap shrinks with levels" `Quick test_gap_shrinks_with_levels;
          Alcotest.test_case "monotone in T_max" `Quick test_throughput_monotone_in_tmax;
          Alcotest.test_case "AO verified by scan" `Quick test_ao_schedule_verified_by_dense_scan;
          Alcotest.test_case "6-core pipeline" `Slow test_six_core_pipeline;
          Alcotest.test_case "16-core stress" `Slow test_sixteen_core_stress;
          Alcotest.test_case "3D platform" `Quick test_3d_platform_pipeline;
        ] );
      ( "cross-model",
        [
          Alcotest.test_case "layered re-evaluation" `Quick test_ao_schedule_on_layered_model;
          Alcotest.test_case "stable status vs transient" `Quick test_stable_status_vs_transient_sim;
        ] );
      ( "util",
        [
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "timer" `Quick test_timer;
          Alcotest.test_case "csv" `Quick test_csv_roundtrip;
          Alcotest.test_case "csv labelled" `Quick test_csv_labelled;
          Alcotest.test_case "stats edges" `Quick test_stats_edges;
          Alcotest.test_case "table" `Quick test_table_renders;
          Alcotest.test_case "parallel map" `Quick test_parallel_map_matches_sequential;
          Alcotest.test_case "parallel exceptions" `Quick test_parallel_map_propagates_exceptions;
          Alcotest.test_case "parallel policies" `Quick test_parallel_real_workload;
          Alcotest.test_case "svg line chart" `Quick test_svg_line_chart;
          Alcotest.test_case "svg rejects bad input" `Quick test_svg_line_chart_rejects_empty;
          Alcotest.test_case "svg heatmap" `Quick test_svg_heatmap;
        ] );
    ]
