(* Unit and property tests for the dense linear-algebra substrate. *)

module Vec = Linalg.Vec
module Mat = Linalg.Mat
module Lu = Linalg.Lu
module Sym_eig = Linalg.Sym_eig
module Expm = Linalg.Expm

let check_float = Alcotest.(check (float 1e-9))
let check_close tol = Alcotest.(check (float tol))

let vec_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check bool) msg true (Vec.approx_equal ~tol expected actual)

let mat_close ?(tol = 1e-9) msg expected actual =
  Alcotest.(check bool) msg true (Mat.approx_equal ~tol expected actual)

(* ------------------------------------------------------------------ Vec *)

let test_vec_arithmetic () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  vec_close "add" [| 5.; 7.; 9. |] (Vec.add x y);
  vec_close "sub" [| -3.; -3.; -3. |] (Vec.sub x y);
  vec_close "scale" [| 2.; 4.; 6. |] (Vec.scale 2. x);
  vec_close "mul" [| 4.; 10.; 18. |] (Vec.mul x y);
  vec_close "axpy" [| 6.; 9.; 12. |] (Vec.axpy 2. x y);
  check_float "dot" 32. (Vec.dot x y);
  check_float "sum" 6. (Vec.sum x);
  check_float "mean" 2. (Vec.mean x)

let test_vec_reductions () =
  let v = [| 3.; -7.; 5.; 1. |] in
  check_float "max" 5. (Vec.max v);
  check_float "min" (-7.) (Vec.min v);
  Alcotest.(check int) "argmax" 2 (Vec.argmax v);
  check_float "norm_inf" 7. (Vec.norm_inf v);
  check_float "norm2" (sqrt 84.) (Vec.norm2 v)

let test_vec_leq () =
  Alcotest.(check bool) "leq true" true (Vec.leq [| 1.; 2. |] [| 1.; 3. |]);
  Alcotest.(check bool) "leq false" false (Vec.leq [| 1.; 4. |] [| 1.; 3. |])

let test_vec_dim_mismatch () =
  Alcotest.check_raises "add mismatch"
    (Invalid_argument "Vec.add: dimension mismatch (2 vs 3)") (fun () ->
      ignore (Vec.add [| 1.; 2. |] [| 1.; 2.; 3. |]))

let test_vec_empty_mean () =
  Alcotest.check_raises "mean empty" (Invalid_argument "Vec.mean: empty vector")
    (fun () -> ignore (Vec.mean [||]))

(* ------------------------------------------------------------------ Mat *)

let test_mat_identity_matmul () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  mat_close "I*A = A" a (Mat.matmul (Mat.identity 2) a);
  mat_close "A*I = A" a (Mat.matmul a (Mat.identity 2))

let test_mat_matmul_known () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Mat.of_rows [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  mat_close "2x2 product" (Mat.of_rows [| [| 19.; 22. |]; [| 43.; 50. |] |]) (Mat.matmul a b)

let test_mat_matvec () =
  let a = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  vec_close "matvec" [| 14.; 32. |] (Mat.matvec a [| 1.; 2.; 3. |]);
  vec_close "vecmat" [| 9.; 12.; 15. |] (Mat.vecmat [| 1.; 2. |] a)

let test_mat_transpose () =
  let a = Mat.of_rows [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let at = Mat.transpose a in
  Alcotest.(check (pair int int)) "dims" (3, 2) (Mat.dims at);
  check_float "element" 6. (Mat.get at 2 1);
  mat_close "double transpose" a (Mat.transpose at)

let test_mat_norms () =
  let a = Mat.of_rows [| [| 1.; -2. |]; [| 3.; 4. |] |] in
  check_float "norm_inf" 7. (Mat.norm_inf a);
  check_float "norm_fro" (sqrt 30.) (Mat.norm_fro a);
  check_float "trace" 5. (Mat.trace a)

let test_mat_symmetry () =
  let s = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  Alcotest.(check bool) "symmetric" true (Mat.is_symmetric s);
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 0.; 3. |] |] in
  Alcotest.(check bool) "asymmetric" false (Mat.is_symmetric a)

let test_mat_diag () =
  let d = Mat.diag [| 1.; 2.; 3. |] in
  check_float "diag get" 2. (Mat.get d 1 1);
  check_float "diag off" 0. (Mat.get d 0 2);
  vec_close "diagonal" [| 1.; 2.; 3. |] (Mat.diagonal d)

let test_mat_add_scaled_identity () =
  let a = Mat.of_rows [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  mat_close "A + 2I" (Mat.of_rows [| [| 3.; 2. |]; [| 3.; 6. |] |]) (Mat.add_scaled_identity 2. a)

let test_mat_bad_dims () =
  Alcotest.check_raises "inner mismatch"
    (Invalid_argument "Mat.matmul: inner dimensions differ (2x2 times 3x2)") (fun () ->
      ignore (Mat.matmul (Mat.identity 2) (Mat.zeros 3 2)))

(* ------------------------------------------------------------------- Lu *)

let random_matrix rng n =
  Mat.init n n (fun _ _ -> Random.State.float rng 2. -. 1.)

let test_lu_solve_known () =
  let a = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 3. |] |] in
  (* x = (1, 2): b = (4, 7) *)
  vec_close "solve" [| 1.; 2. |] (Lu.solve a [| 4.; 7. |])

let test_lu_inverse_roundtrip () =
  let rng = Random.State.make [| 42 |] in
  for n = 1 to 8 do
    let a = Mat.add_scaled_identity (float_of_int n) (random_matrix rng n) in
    let inv = Lu.inverse a in
    mat_close ~tol:1e-9 (Printf.sprintf "A*A^-1 = I (n=%d)" n) (Mat.identity n)
      (Mat.matmul a inv)
  done

let test_lu_det () =
  let a = Mat.of_rows [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_float "diag det" 6. (Lu.det a);
  let b = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float "permutation det" (-1.) (Lu.det b);
  check_float "singular det" 0. (Lu.det (Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |]))

let test_lu_singular_raises () =
  let s = Mat.of_rows [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.(check bool) "raises Singular" true
    (match Lu.factorize s with exception Lu.Singular _ -> true | _ -> false)

let test_lu_pivoting () =
  (* Requires row exchange: leading zero pivot. *)
  let a = Mat.of_rows [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  vec_close "swap solve" [| 2.; 1. |] (Lu.solve a [| 1.; 2. |])

let test_lu_solve_mat () =
  let a = Mat.of_rows [| [| 3.; 1. |]; [| 1.; 2. |] |] in
  let x = Mat.of_rows [| [| 1.; 0. |]; [| 2.; 5. |] |] in
  let b = Mat.matmul a x in
  mat_close ~tol:1e-12 "solve_mat" x (Lu.solve_mat (Lu.factorize a) b)

(* -------------------------------------------------------------- Sym_eig *)

let random_symmetric rng n =
  let a = random_matrix rng n in
  Mat.init n n (fun i j -> (Mat.get a i j +. Mat.get a j i) /. 2.)

let test_eig_diagonal () =
  let d = Sym_eig.decompose (Mat.diag [| 3.; 1.; 2. |]) in
  vec_close "sorted eigenvalues" [| 1.; 2.; 3. |] d.Sym_eig.eigenvalues

let test_eig_known_2x2 () =
  (* [[2,1],[1,2]] has eigenvalues 1 and 3. *)
  let d = Sym_eig.decompose (Mat.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |]) in
  vec_close ~tol:1e-12 "eigenvalues" [| 1.; 3. |] d.Sym_eig.eigenvalues

let test_eig_reconstruct () =
  let rng = Random.State.make [| 7 |] in
  for n = 2 to 10 do
    let s = random_symmetric rng n in
    let d = Sym_eig.decompose s in
    mat_close ~tol:1e-10 (Printf.sprintf "reconstruct n=%d" n) s (Sym_eig.reconstruct d)
  done

let test_eig_orthonormal () =
  let rng = Random.State.make [| 11 |] in
  let s = random_symmetric rng 6 in
  let d = Sym_eig.decompose s in
  let v = d.Sym_eig.eigenvectors in
  mat_close ~tol:1e-10 "V^T V = I" (Mat.identity 6) (Mat.matmul (Mat.transpose v) v)

let test_eig_apply_function () =
  let s = Mat.of_rows [| [| 2.; 1. |]; [| 1.; 2. |] |] in
  let d = Sym_eig.decompose s in
  (* exp of the matrix via eigenvalues must match the Padé expm. *)
  mat_close ~tol:1e-9 "exp via eig = expm" (Expm.expm s) (Sym_eig.apply_function d exp)

let test_eig_rejects_asymmetric () =
  Alcotest.check_raises "asymmetric input"
    (Invalid_argument "Sym_eig.decompose: matrix not symmetric") (fun () ->
      ignore (Sym_eig.decompose (Mat.of_rows [| [| 1.; 2. |]; [| 0.; 1. |] |])))

(* ----------------------------------------------------------------- Expm *)

let test_expm_zero () =
  mat_close "e^0 = I" (Mat.identity 4) (Expm.expm (Mat.zeros 4 4))

let test_expm_diagonal () =
  let e = Expm.expm (Mat.diag [| 1.; -2. |]) in
  check_close 1e-12 "e^1" (exp 1.) (Mat.get e 0 0);
  check_close 1e-12 "e^-2" (exp (-2.)) (Mat.get e 1 1);
  check_float "off-diag" 0. (Mat.get e 0 1)

let test_expm_nilpotent () =
  (* exp [[0,1],[0,0]] = [[1,1],[0,1]] exactly. *)
  let n = Mat.of_rows [| [| 0.; 1. |]; [| 0.; 0. |] |] in
  mat_close ~tol:1e-14 "nilpotent" (Mat.of_rows [| [| 1.; 1. |]; [| 0.; 1. |] |]) (Expm.expm n)

let test_expm_rotation () =
  (* exp [[0,-t],[t,0]] is a rotation by t. *)
  let t = 1.2 in
  let r = Expm.expm (Mat.of_rows [| [| 0.; -.t |]; [| t; 0. |] |]) in
  check_close 1e-12 "cos" (cos t) (Mat.get r 0 0);
  check_close 1e-12 "sin" (sin t) (Mat.get r 1 0)

let test_expm_inverse_property () =
  let rng = Random.State.make [| 3 |] in
  let a = random_matrix rng 5 in
  let e = Expm.expm a in
  let e_neg = Expm.expm (Mat.scale (-1.) a) in
  mat_close ~tol:1e-10 "e^A e^-A = I" (Mat.identity 5) (Mat.matmul e e_neg)

let test_expm_scaling_branch () =
  (* Norm far above theta13 forces the squaring path. *)
  let a = Mat.scale 40. (Mat.of_rows [| [| 0.; 1. |]; [| -1.; 0. |] |]) in
  let r = Expm.expm a in
  check_close 1e-8 "large rotation cos" (cos 40.) (Mat.get r 0 0)

let test_expm_semigroup () =
  let rng = Random.State.make [| 13 |] in
  let a = random_matrix rng 4 in
  let lhs = Expm.expm_scaled a 0.7 in
  let rhs = Mat.matmul (Expm.expm_scaled a 0.3) (Expm.expm_scaled a 0.4) in
  mat_close ~tol:1e-11 "e^{0.7A} = e^{0.3A} e^{0.4A}" lhs rhs

(* ------------------------------------------------------------ properties *)

let vec_gen n = QCheck.Gen.(array_size (return n) (float_bound_inclusive 10.))

let prop_lu_solve_residual =
  QCheck.Test.make ~name:"lu: ||Ax - b|| small for well-conditioned A" ~count:100
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 8 in
          let* entries = array_size (return (n * n)) (float_bound_inclusive 1.) in
          let* b = vec_gen n in
          return (n, entries, b)))
    (fun (n, entries, b) ->
      let a =
        Mat.add_scaled_identity (float_of_int (2 * n)) (Mat.init n n (fun i j -> entries.((i * n) + j)))
      in
      let x = Lu.solve a b in
      Vec.dist_inf (Mat.matvec a x) b < 1e-8)

let prop_eig_spectrum_matches_trace =
  QCheck.Test.make ~name:"sym_eig: eigenvalue sum equals trace" ~count:100
    QCheck.(
      make
        Gen.(
          let* n = int_range 2 8 in
          let* entries = array_size (return (n * n)) (float_bound_inclusive 1.) in
          return (n, entries)))
    (fun (n, entries) ->
      let raw = Mat.init n n (fun i j -> entries.((i * n) + j)) in
      let s = Mat.init n n (fun i j -> (Mat.get raw i j +. Mat.get raw j i) /. 2.) in
      let d = Sym_eig.decompose s in
      Float.abs (Vec.sum d.Sym_eig.eigenvalues -. Mat.trace s) < 1e-9)

let prop_expm_det =
  QCheck.Test.make ~name:"expm: det e^A = e^{tr A}" ~count:60
    QCheck.(
      make
        Gen.(
          let* n = int_range 1 5 in
          let* entries = array_size (return (n * n)) (float_bound_inclusive 1.) in
          return (n, entries)))
    (fun (n, entries) ->
      let a = Mat.init n n (fun i j -> entries.((i * n) + j)) in
      let lhs = Lu.det (Expm.expm a) in
      let rhs = exp (Mat.trace a) in
      Float.abs (lhs -. rhs) <= 1e-7 *. Float.max 1. (Float.abs rhs))

let () =
  Alcotest.run "linalg"
    [
      ( "vec",
        [
          Alcotest.test_case "arithmetic" `Quick test_vec_arithmetic;
          Alcotest.test_case "reductions" `Quick test_vec_reductions;
          Alcotest.test_case "leq ordering" `Quick test_vec_leq;
          Alcotest.test_case "dimension mismatch" `Quick test_vec_dim_mismatch;
          Alcotest.test_case "empty mean raises" `Quick test_vec_empty_mean;
        ] );
      ( "mat",
        [
          Alcotest.test_case "identity matmul" `Quick test_mat_identity_matmul;
          Alcotest.test_case "known product" `Quick test_mat_matmul_known;
          Alcotest.test_case "matvec/vecmat" `Quick test_mat_matvec;
          Alcotest.test_case "transpose" `Quick test_mat_transpose;
          Alcotest.test_case "norms and trace" `Quick test_mat_norms;
          Alcotest.test_case "symmetry check" `Quick test_mat_symmetry;
          Alcotest.test_case "diag round trip" `Quick test_mat_diag;
          Alcotest.test_case "add scaled identity" `Quick test_mat_add_scaled_identity;
          Alcotest.test_case "bad dims raise" `Quick test_mat_bad_dims;
        ] );
      ( "lu",
        [
          Alcotest.test_case "known solve" `Quick test_lu_solve_known;
          Alcotest.test_case "inverse round trip" `Quick test_lu_inverse_roundtrip;
          Alcotest.test_case "determinants" `Quick test_lu_det;
          Alcotest.test_case "singular raises" `Quick test_lu_singular_raises;
          Alcotest.test_case "pivoting" `Quick test_lu_pivoting;
          Alcotest.test_case "matrix rhs" `Quick test_lu_solve_mat;
        ] );
      ( "sym_eig",
        [
          Alcotest.test_case "diagonal input" `Quick test_eig_diagonal;
          Alcotest.test_case "known 2x2" `Quick test_eig_known_2x2;
          Alcotest.test_case "reconstruction" `Quick test_eig_reconstruct;
          Alcotest.test_case "orthonormal vectors" `Quick test_eig_orthonormal;
          Alcotest.test_case "matrix function" `Quick test_eig_apply_function;
          Alcotest.test_case "rejects asymmetric" `Quick test_eig_rejects_asymmetric;
        ] );
      ( "expm",
        [
          Alcotest.test_case "zero matrix" `Quick test_expm_zero;
          Alcotest.test_case "diagonal" `Quick test_expm_diagonal;
          Alcotest.test_case "nilpotent" `Quick test_expm_nilpotent;
          Alcotest.test_case "rotation" `Quick test_expm_rotation;
          Alcotest.test_case "inverse property" `Quick test_expm_inverse_property;
          Alcotest.test_case "scaling branch" `Quick test_expm_scaling_branch;
          Alcotest.test_case "semigroup property" `Quick test_expm_semigroup;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_lu_solve_residual; prop_eig_spectrum_matches_trace; prop_expm_det ] );
    ]
