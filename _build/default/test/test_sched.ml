(* Tests for periodic schedules, the step-up transform, m-oscillation,
   throughput accounting and peak-temperature evaluation. *)

module S = Sched.Schedule
module Stepup = Sched.Stepup
module Osc = Sched.Oscillate
module Thr = Sched.Throughput
module Peak = Sched.Peak

let check_close tol = Alcotest.(check (float tol))

let seg d v = { S.duration = d; voltage = v }

let model3 () =
  Thermal.Hotspot.core_level (Thermal.Floorplan.grid ~rows:1 ~cols:3 ~core_width:4e-3 ~core_height:4e-3)

let pm = Power.Power_model.default

(* ------------------------------------------------------------- schedule *)

let test_make_validates () =
  Alcotest.(check bool) "durations must cover period" true
    (match S.make ~period:1. [| [ seg 0.5 1. ] |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "negative voltage rejected" true
    (match S.make ~period:1. [| [ seg 1. (-0.5) ] |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty core rejected" true
    (match S.make ~period:1. [| [] |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_uniform () =
  let s = S.uniform ~period:2. [| 1.0; 0.6 |] in
  Alcotest.(check int) "cores" 2 (S.n_cores s);
  check_close 1e-12 "voltage" 1.0 (S.voltage_at s 0 1.5);
  Alcotest.(check int) "no transitions" 0 (S.transitions s 0)

let test_two_mode () =
  let s =
    S.two_mode ~period:1. ~low:[| 0.6; 0.6 |] ~high:[| 1.3; 1.3 |]
      ~high_ratio:[| 0.25; 0. |]
  in
  check_close 1e-12 "low phase" 0.6 (S.voltage_at s 0 0.5);
  check_close 1e-12 "high phase" 1.3 (S.voltage_at s 0 0.9);
  Alcotest.(check int) "degenerate ratio 0 is constant" 1
    (List.length (S.core_segments s 1));
  Alcotest.(check int) "two transitions per period" 2 (S.transitions s 0)

let test_voltage_at_wraps () =
  let s = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  check_close 1e-12 "wraps modulo period" 0.6 (S.voltage_at s 0 1.25);
  check_close 1e-12 "negative time wraps" 1.3 (S.voltage_at s 0 (-0.25))

let test_state_intervals () =
  let s =
    S.make ~period:1.
      [| [ seg 0.5 0.6; seg 0.5 1.3 ]; [ seg 0.25 0.6; seg 0.75 1.3 ] |]
  in
  let ivs = S.state_intervals s in
  Alcotest.(check int) "three state intervals" 3 (List.length ivs);
  let total = List.fold_left (fun acc (d, _) -> acc +. d) 0. ivs in
  check_close 1e-9 "intervals cover the period" 1. total;
  (* Middle interval [0.25, 0.5): core0 low, core1 high. *)
  let _, v_mid = List.nth ivs 1 in
  check_close 1e-12 "core0 mid" 0.6 v_mid.(0);
  check_close 1e-12 "core1 mid" 1.3 v_mid.(1)

let test_shift_round_trip () =
  let s = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  let shifted = S.shift s 0 0.25 in
  (* After shifting by 0.25, what was at t=0.25 (low) is now at 0. *)
  check_close 1e-12 "shifted start" 0.6 (S.voltage_at shifted 0 0.);
  check_close 1e-12 "shifted high" 1.3 (S.voltage_at shifted 0 0.3);
  let back = S.shift shifted 0 0.75 in
  Alcotest.(check bool) "shift composes to identity" true (S.equal s back)

let test_shift_zero_is_identity () =
  let s = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  Alcotest.(check bool) "zero shift" true (S.equal s (S.shift s 0 0.))

let test_scale_durations () =
  let s = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  let half = S.scale_durations s 0.5 in
  check_close 1e-12 "period halves" 0.5 (S.period half);
  check_close 1e-12 "segments halve" 0.25 (List.hd (S.core_segments half 0)).S.duration

let test_transitions_wraparound () =
  (* low-high-low: internal boundaries are 2 changes, wrap is same-voltage. *)
  let s = S.make ~period:1. [| [ seg 0.3 0.6; seg 0.4 1.3; seg 0.3 0.6 ] |] in
  Alcotest.(check int) "two transitions" 2 (S.transitions s 0);
  (* low-high: 1 internal + 1 wrap = 2. *)
  let s2 = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  Alcotest.(check int) "wrap counted" 2 (S.transitions s2 0)

let test_serialization_round_trip () =
  let s =
    S.make ~period:0.02
      [|
        [ seg 0.012 0.6; seg 0.008 1.3 ];
        [ seg 0.02 1.0 ];
        [ seg 0.005 0.6; seg 0.007 0.8; seg 0.008 1.2 ];
      |]
  in
  Alcotest.(check bool) "round trip exact" true
    (S.equal ~tol:0. s (S.of_string (S.to_string s)))

let test_serialization_errors () =
  let bad what text =
    Alcotest.(check bool) what true
      (match S.of_string text with
      | exception (Failure _ | Invalid_argument _) -> true
      | _ -> false)
  in
  bad "empty" "";
  bad "no period" "core 0: 1@1\n";
  bad "bad segment" "period 1\ncore 0: x@1\n";
  bad "durations do not cover" "period 1\ncore 0: 0.5@1\n"

(* --------------------------------------------------------------- stepup *)

let test_is_step_up () =
  let up = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  Alcotest.(check bool) "ascending is step-up" true (Stepup.is_step_up up);
  let down = S.make ~period:1. [| [ seg 0.5 1.3; seg 0.5 0.6 ] |] in
  Alcotest.(check bool) "descending is not" false (Stepup.is_step_up down);
  let constant = S.uniform ~period:1. [| 0.8 |] in
  Alcotest.(check bool) "constant is step-up" true (Stepup.is_step_up constant)

let test_reorder_definition2 () =
  let s = S.make ~period:1. [| [ seg 0.2 1.3; seg 0.5 0.6; seg 0.3 0.8 ] |] in
  let r = Stepup.reorder s in
  Alcotest.(check bool) "result is step-up" true (Stepup.is_step_up r);
  (* Same multiset of (duration, voltage). *)
  check_close 1e-12 "total work preserved" (Thr.ideal s) (Thr.ideal r);
  let voltages = List.map (fun x -> x.S.voltage) (S.core_segments r 0) in
  Alcotest.(check (list (float 1e-12))) "sorted voltages" [ 0.6; 0.8; 1.3 ] voltages

let test_reorder_merges_equal_voltages () =
  let s = S.make ~period:1. [| [ seg 0.2 1.3; seg 0.3 0.6; seg 0.5 0.6 ] |] in
  let r = Stepup.reorder s in
  Alcotest.(check int) "equal voltages merged" 2 (List.length (S.core_segments r 0));
  check_close 1e-12 "merged duration" 0.8 (List.hd (S.core_segments r 0)).S.duration

(* ------------------------------------------------------------ oscillate *)

let test_oscillate_scales () =
  let s = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  let o = Osc.oscillate 4 s in
  check_close 1e-12 "period / m" 0.25 (S.period o);
  Alcotest.(check bool) "m=1 is identity" true (S.equal s (Osc.oscillate 1 s));
  Alcotest.(check bool) "m=0 rejected" true
    (match Osc.oscillate 0 s with exception Invalid_argument _ -> true | _ -> false)

let test_delta_formula () =
  check_close 1e-12 "delta" ((0.6 +. 1.3) *. 5e-6 /. (1.3 -. 0.6))
    (Osc.delta ~tau:5e-6 ~v_low:0.6 ~v_high:1.3);
  Alcotest.(check bool) "equal modes rejected" true
    (match Osc.delta ~tau:1e-6 ~v_low:1.0 ~v_high:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_max_m () =
  (* t_low = 10 ms, tau = 5 us: delta = 1.9*5e-6/0.7 = 13.57 us;
     M = floor(0.01 / 18.57e-6) = 538. *)
  let m = Osc.max_m_for_core ~tau:5e-6 ~v_low:0.6 ~v_high:1.3 ~t_low:0.01 in
  Alcotest.(check int) "paper formula" 538 m;
  Alcotest.(check int) "constant core unbounded" max_int
    (Osc.max_m_for_core ~tau:5e-6 ~v_low:1.0 ~v_high:1.0 ~t_low:0.01);
  Alcotest.(check int) "chip-wide minimum" 538
    (Osc.max_m ~tau:5e-6 ~modes:[| (0.6, 1.3, 0.01); (1.0, 1.0, 0.01) |]);
  Alcotest.(check int) "zero tau unbounded, clamped to max_int" max_int
    (Osc.max_m ~tau:0. ~modes:[| (0.6, 1.3, 0.01) |])

let test_with_ramps_structure () =
  let s = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  let r = Osc.with_ramps ~steps:4 ~tau:0.02 s in
  check_close 1e-9 "period preserved" 1. (S.period r);
  (* Two boundaries (internal + wrap), 4 ramp sub-segments each, plus the
     two trimmed base segments. *)
  Alcotest.(check int) "segment count" 10 (List.length (S.core_segments r 0));
  (* Ramp voltages are strictly between the modes. *)
  Alcotest.(check bool) "ramp voltages inside (0.6, 1.3)" true
    (List.for_all
       (fun x -> x.S.voltage >= 0.6 -. 1e-12 && x.S.voltage <= 1.3 +. 1e-12)
       (S.core_segments r 0))

let test_with_ramps_constant_core_untouched () =
  let s = S.uniform ~period:1. [| 0.8 |] in
  Alcotest.(check bool) "constant core unchanged" true
    (S.equal s (Osc.with_ramps ~steps:3 ~tau:0.01 s))

let test_with_ramps_thermal_effect_bounded () =
  (* With a realistic (tiny) ramp the peak must be indistinguishable from
     the instant-switch idealization; with an exaggerated ramp it may
     move, but only by a bounded amount. *)
  let m = model3 () in
  let s =
    S.two_mode ~period:0.05 ~low:[| 0.6; 0.6; 0.6 |] ~high:[| 1.3; 1.3; 1.3 |]
      ~high_ratio:[| 0.5; 0.5; 0.5 |]
  in
  let base = Peak.of_any m pm ~samples_per_segment:32 s in
  let tiny = Peak.of_any m pm ~samples_per_segment:32 (Osc.with_ramps ~steps:3 ~tau:1e-5 s) in
  check_close 1e-2 "5us-scale ramps are thermally invisible" base tiny;
  let coarse =
    Peak.of_any m pm ~samples_per_segment:32 (Osc.with_ramps ~steps:6 ~tau:5e-3 s)
  in
  Alcotest.(check bool) "5ms ramps shift the peak by < 1C" true
    (Float.abs (coarse -. base) < 1.)

let test_with_ramps_validation () =
  let s = S.make ~period:0.01 [| [ seg 0.005 0.6; seg 0.005 1.3 ] |] in
  Alcotest.(check bool) "ramp longer than segment rejected" true
    (match Osc.with_ramps ~steps:2 ~tau:0.006 s with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----------------------------------------------------------- throughput *)

let test_throughput_eq5 () =
  (* Eq. (5): mean over cores of time-weighted speed. *)
  let s =
    S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ]; [ seg 1.0 1.0 ] |]
  in
  check_close 1e-12 "eq5" ((0.95 +. 1.0) /. 2.) (Thr.ideal s)

let test_throughput_overhead () =
  let s = S.make ~period:1. [| [ seg 0.5 0.6; seg 0.5 1.3 ] |] in
  (* Two boundaries per period, each stalling at the mode being left:
     tau*0.6 at low->high and tau*1.3 at the wrap — (v_L + v_H)*tau in
     total, matching the delta repayment of Section V. *)
  let tau = 1e-3 in
  check_close 1e-12 "stall charged" (0.95 -. (tau *. 1.9))
    (Thr.with_overhead ~tau s);
  check_close 1e-12 "zero tau matches ideal" (Thr.ideal s) (Thr.with_overhead ~tau:0. s)

let test_throughput_clamps_at_zero () =
  (* Absurd tau: net work must clamp at zero, not go negative. *)
  let s = S.make ~period:1e-6 [| [ seg 5e-7 0.6; seg 5e-7 1.3 ] |] in
  Alcotest.(check bool) "non-negative" true (Thr.with_overhead ~tau:1. s >= 0.)

let test_per_core () =
  let s =
    S.make ~period:1. [| [ seg 1.0 0.8 ]; [ seg 0.5 0.6; seg 0.5 1.3 ] |]
  in
  let speeds = Thr.per_core ~tau:0. s in
  check_close 1e-12 "constant core" 0.8 speeds.(0);
  check_close 1e-12 "two-mode core" 0.95 speeds.(1)

(* ----------------------------------------------------------------- peak *)

let test_peak_constant_is_steady () =
  let m = model3 () in
  let v = [| 1.0; 1.0; 1.0 |] in
  let s = S.uniform ~period:0.1 v in
  check_close 1e-9 "constant schedule peak = T^inf"
    (Peak.steady_constant m pm v)
    (Peak.of_step_up m pm s)

let test_peak_step_up_requires_step_up () =
  let m = model3 () in
  let s =
    S.make ~period:1.
      [|
        [ seg 0.5 1.3; seg 0.5 0.6 ];
        [ seg 1.0 0.6 ];
        [ seg 1.0 0.6 ];
      |]
  in
  Alcotest.check_raises "non-step-up rejected"
    (Invalid_argument "Peak.of_step_up: schedule is not step-up") (fun () ->
      ignore (Peak.of_step_up m pm s))

let test_peak_of_any_close_to_step_up_on_step_up_input () =
  let m = model3 () in
  let s =
    S.make ~period:0.4
      [|
        [ seg 0.2 0.6; seg 0.2 1.3 ];
        [ seg 0.3 0.6; seg 0.1 1.3 ];
        [ seg 0.4 0.6 ];
      |]
  in
  let cheap = Peak.of_step_up m pm s in
  let scan = Peak.of_any m pm ~samples_per_segment:64 s in
  (* Theorem 1: the dense scan cannot find anything above the period end. *)
  Alcotest.(check bool) "scan within 0.01C of end-of-period" true
    (scan <= cheap +. 1e-9 && scan >= cheap -. 0.01)

let test_peak_profile_arity_checked () =
  let m = model3 () in
  let s = S.uniform ~period:1. [| 1.0 |] in
  Alcotest.(check bool) "core count mismatch rejected" true
    (match Peak.profile m pm s with exception Invalid_argument _ -> true | _ -> false)

let test_stable_end_core_temps_bounded_by_peak () =
  let m = model3 () in
  let s =
    S.make ~period:0.2
      [|
        [ seg 0.1 0.6; seg 0.1 1.3 ];
        [ seg 0.1 0.6; seg 0.1 1.3 ];
        [ seg 0.2 0.6 ];
      |]
  in
  let temps = Peak.stable_end_core_temps m pm s in
  let peak = Peak.of_step_up m pm s in
  check_close 1e-9 "max end temp is the step-up peak" peak (Linalg.Vec.max temps)

(* ----------------------------------------------------------------- energy *)

let test_energy_constant_schedule () =
  (* A constant schedule's average power equals the steady total power:
     sum psi + beta * sum T_steady. *)
  let m = model3 () in
  let v = [| 1.0; 0.8; 1.2 |] in
  let s = S.uniform ~period:0.5 v in
  let b = Sched.Energy.per_period m pm s in
  let psi = Power.Power_model.psi_vector pm v in
  let temps = Thermal.Model.steady_core_temps m psi in
  let expected =
    Linalg.Vec.sum psi +. (Thermal.Model.leak_beta m *. Linalg.Vec.sum temps)
  in
  check_close 1e-6 "average power = steady power" expected (Sched.Energy.average_power b)

let test_energy_dynamic_component () =
  let m = model3 () in
  let s =
    S.make ~period:1.
      [|
        [ seg 0.5 0.6; seg 0.5 1.3 ];
        [ seg 1.0 1.0 ];
        [ seg 1.0 0.6 ];
      |]
  in
  let b = Sched.Energy.per_period m pm s in
  let expected_dynamic =
    (0.5 *. Power.Power_model.psi pm 0.6)
    +. (0.5 *. Power.Power_model.psi pm 1.3)
    +. Power.Power_model.psi pm 1.0
    +. Power.Power_model.psi pm 0.6
  in
  check_close 1e-9 "dynamic energy" expected_dynamic b.Sched.Energy.dynamic;
  Alcotest.(check bool) "leakage positive" true (b.Sched.Energy.leakage > 0.)

let test_energy_monotone_in_voltage () =
  let m = model3 () in
  let energy v = Sched.Energy.total (Sched.Energy.per_period m pm (S.uniform ~period:0.2 (Array.make 3 v))) in
  Alcotest.(check bool) "higher voltage, more energy" true (energy 1.2 > energy 0.8)

let test_energy_per_work () =
  (* Constant-speed energy per work: higher voltage is less efficient
     (cubic dynamic power vs linear work). *)
  let m = model3 () in
  let epw v = Sched.Energy.per_work m pm (S.uniform ~period:0.2 (Array.make 3 v)) in
  Alcotest.(check bool) "1.3V less efficient than 0.8V" true (epw 1.3 > epw 0.8);
  Alcotest.(check bool) "idle schedule rejected" true
    (match Sched.Energy.per_work m pm (S.uniform ~period:0.2 (Array.make 3 0.)) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ----------------------------------------------------------------- render *)

let test_gantt_structure () =
  let s =
    S.make ~period:0.01
      [| [ seg 0.004 0.6; seg 0.006 1.3 ]; [ seg 0.01 1.0 ]; [ seg 0.01 0. ] |]
  in
  let svg = Sched.Render.gantt_svg ~title:"test" s in
  let count needle =
    let n = ref 0 in
    let m = String.length svg and k = String.length needle in
    for i = 0 to m - k do
      if String.sub svg i k = needle then incr n
    done;
    !n
  in
  (* 4 segments + background + 3 legend swatches (0.6, 1.0, 1.3). *)
  Alcotest.(check int) "rect count" 8 (count "<rect");
  Alcotest.(check int) "core labels" 3 (count ">core ");
  Alcotest.(check bool) "idle core drawn grey" true (count "#bbbbbb" >= 1);
  Alcotest.(check bool) "well formed" true (count "</svg>" = 1)

let test_gantt_validation () =
  let s = S.uniform ~period:1. [| 1.0 |] in
  Alcotest.(check bool) "bad width rejected" true
    (match Sched.Render.gantt_svg ~width:0 s with
    | exception Invalid_argument _ -> true
    | _ -> false)

let () =
  Alcotest.run "sched"
    [
      ( "schedule",
        [
          Alcotest.test_case "validation" `Quick test_make_validates;
          Alcotest.test_case "uniform" `Quick test_uniform;
          Alcotest.test_case "two mode" `Quick test_two_mode;
          Alcotest.test_case "voltage_at wraps" `Quick test_voltage_at_wraps;
          Alcotest.test_case "state intervals" `Quick test_state_intervals;
          Alcotest.test_case "shift round trip" `Quick test_shift_round_trip;
          Alcotest.test_case "zero shift identity" `Quick test_shift_zero_is_identity;
          Alcotest.test_case "scale durations" `Quick test_scale_durations;
          Alcotest.test_case "transition counting" `Quick test_transitions_wraparound;
          Alcotest.test_case "serialization round trip" `Quick test_serialization_round_trip;
          Alcotest.test_case "serialization errors" `Quick test_serialization_errors;
        ] );
      ( "stepup",
        [
          Alcotest.test_case "is_step_up" `Quick test_is_step_up;
          Alcotest.test_case "Definition 2 reorder" `Quick test_reorder_definition2;
          Alcotest.test_case "reorder merges" `Quick test_reorder_merges_equal_voltages;
        ] );
      ( "oscillate",
        [
          Alcotest.test_case "scaling" `Quick test_oscillate_scales;
          Alcotest.test_case "delta formula" `Quick test_delta_formula;
          Alcotest.test_case "max m bound" `Quick test_max_m;
          Alcotest.test_case "ramps structure" `Quick test_with_ramps_structure;
          Alcotest.test_case "ramps constant core" `Quick test_with_ramps_constant_core_untouched;
          Alcotest.test_case "ramps thermal effect" `Quick test_with_ramps_thermal_effect_bounded;
          Alcotest.test_case "ramps validation" `Quick test_with_ramps_validation;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "Eq. (5)" `Quick test_throughput_eq5;
          Alcotest.test_case "transition overhead" `Quick test_throughput_overhead;
          Alcotest.test_case "clamps at zero" `Quick test_throughput_clamps_at_zero;
          Alcotest.test_case "per core" `Quick test_per_core;
        ] );
      ( "render",
        [
          Alcotest.test_case "gantt structure" `Quick test_gantt_structure;
          Alcotest.test_case "gantt validation" `Quick test_gantt_validation;
        ] );
      ( "energy",
        [
          Alcotest.test_case "constant schedule" `Quick test_energy_constant_schedule;
          Alcotest.test_case "dynamic component" `Quick test_energy_dynamic_component;
          Alcotest.test_case "monotone in voltage" `Quick test_energy_monotone_in_voltage;
          Alcotest.test_case "per work" `Quick test_energy_per_work;
        ] );
      ( "peak",
        [
          Alcotest.test_case "constant = steady" `Quick test_peak_constant_is_steady;
          Alcotest.test_case "step-up precondition" `Quick test_peak_step_up_requires_step_up;
          Alcotest.test_case "scan vs end-of-period" `Quick
            test_peak_of_any_close_to_step_up_on_step_up_input;
          Alcotest.test_case "profile arity" `Quick test_peak_profile_arity_checked;
          Alcotest.test_case "end temps vs peak" `Quick
            test_stable_end_core_temps_bounded_by_peak;
        ] );
    ]
