examples/motivation.ml: Array Core Printf Sched String Workload
