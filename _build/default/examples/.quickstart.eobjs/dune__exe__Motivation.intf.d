examples/motivation.mli:
