examples/governor_compare.ml: Array Core List Power Printf Runtime Workload
