examples/interop.mli:
