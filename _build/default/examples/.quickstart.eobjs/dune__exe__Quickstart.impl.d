examples/quickstart.ml: Array Core Filename Format Power Printf Sched String Thermal Util
