examples/governor_compare.mli:
