examples/stacked3d.mli:
