examples/realtime.ml: Array Core Format List Printf String Tasks Workload
