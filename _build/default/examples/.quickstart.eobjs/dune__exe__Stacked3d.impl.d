examples/stacked3d.ml: Array Core Power Printf Thermal
