examples/realtime.mli:
