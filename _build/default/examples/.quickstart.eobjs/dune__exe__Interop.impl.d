examples/interop.ml: Array Core Filename Float Linalg List Power Printf Random Runtime Sched String Sys Thermal Util Workload
