examples/quickstart.mli:
