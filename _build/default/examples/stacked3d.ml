(* Thermal-aware scheduling on a 3D-stacked multi-core.

     dune exec examples/stacked3d.exe

   The paper's introduction motivates the work with 3D integration:
   stacked dies have longer heat-removal paths and higher power density.
   This example builds a 2-layer 2x2 stack (8 cores), shows the thermal
   asymmetry between layers, and runs the same AO policy on it — the
   library is layout-agnostic because everything flows through the
   compact model. *)

let () =
  let layers = 2 and rows = 2 and cols = 2 in
  let fp = Thermal.Floorplan.stack3d ~layers ~rows ~cols ~core_width:4e-3 ~core_height:4e-3 in
  let model = Thermal.Hotspot.core_level fp in
  let n = Thermal.Model.n_cores model in
  Printf.printf "3D platform: %d layers x %dx%d = %d cores\n" layers rows cols n;

  (* Thermal asymmetry: equal power on every core, very unequal temps. *)
  let pm = Power.Power_model.default in
  let uniform_psi = Array.make n (Power.Power_model.psi pm 1.0) in
  let temps = Thermal.Model.steady_core_temps model uniform_psi in
  Printf.printf "\nsteady temperatures at a uniform 1.0 V load:\n";
  Array.iteri
    (fun i t ->
      Printf.printf "  %-10s %.2f C%s\n"
        fp.Thermal.Floorplan.blocks.(i).Thermal.Floorplan.name t
        (if i >= rows * cols then "   (stacked: hotter)" else ""))
    temps;

  (* The ideal solve automatically derates the stacked layer. *)
  let platform = Core.Platform.make ~levels:(Power.Vf.table_iv 5) ~t_max:65. model in
  let ideal = Core.Ideal.solve platform in
  Printf.printf "\nideal voltages at T_max = 65 C:\n";
  Array.iteri
    (fun i v ->
      Printf.printf "  %-10s %.4f V\n"
        fp.Thermal.Floorplan.blocks.(i).Thermal.Floorplan.name v)
    ideal.Core.Ideal.voltages;

  let lns = Core.Lns.solve platform in
  let ao = Core.Ao.solve platform in
  Printf.printf "\nLNS throughput: %.4f\n" lns.Core.Lns.throughput;
  Printf.printf "AO  throughput: %.4f (m = %d, peak %.2f C)\n" ao.Core.Ao.throughput
    ao.Core.Ao.m ao.Core.Ao.peak;
  Printf.printf "AO gain over LNS on the 3D stack: %+.1f%%\n"
    ((ao.Core.Ao.throughput -. lns.Core.Lns.throughput)
    /. lns.Core.Lns.throughput *. 100.)
