(* The paper's Section III motivation example, step by step.

     dune exec examples/motivation.exe

   A 3-core processor with T_max = 65 C and only two running modes
   (0.6 V and 1.3 V).  The walk-through shows why oscillating between
   two modes beats every constant assignment: it is easier to tune an
   interval LENGTH than a voltage LEVEL. *)

let () =
  let platform = Workload.Configs.platform ~cores:3 ~levels:2 ~t_max:65. in
  let model = platform.Core.Platform.model in
  let pm = platform.Core.Platform.power in

  Printf.printf "Step 1 - the continuous ideal.\n";
  let ideal = Core.Ideal.solve platform in
  Printf.printf
    "  pinning every core's steady temperature at 65 C allows voltages [%s]\n"
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.4f") ideal.Core.Ideal.voltages)));
  Printf.printf "  chip throughput %.4f  (paper: 1.1972 with [1.2085; 1.1748; 1.2085])\n"
    ideal.Core.Ideal.throughput;
  Printf.printf "  note the middle core runs slower: its neighbours heat it.\n\n";

  Printf.printf "Step 2 - but only 0.6 V and 1.3 V exist.\n";
  let lns = Core.Lns.solve platform in
  Printf.printf "  LNS rounds everything down to 0.6 V: throughput %.4f.\n"
    lns.Core.Lns.throughput;
  let exs = Core.Exs.solve platform in
  Printf.printf "  EXS searches all %d assignments: best [%s], throughput %.4f.\n"
    exs.Core.Exs.evaluated
    (String.concat "; "
       (Array.to_list (Array.map (Printf.sprintf "%.1f") exs.Core.Exs.voltages)))
    exs.Core.Exs.throughput;
  Printf.printf "  neither can use the %.1f C of headroom EXS leaves (peak %.2f C).\n\n"
    (65. -. exs.Core.Exs.peak) exs.Core.Exs.peak;

  Printf.printf "Step 3 - oscillate between the two modes instead.\n";
  let ratio =
    Array.map (fun v -> (v -. 0.6) /. (1.3 -. 0.6)) ideal.Core.Ideal.voltages
  in
  Printf.printf "  high-mode ratios preserving the ideal work: [%s] (Table II)\n"
    (String.concat "; " (Array.to_list (Array.map (Printf.sprintf "%.4f") ratio)));
  let naive =
    Sched.Schedule.two_mode ~period:0.02 ~low:(Array.make 3 0.6)
      ~high:(Array.make 3 1.3) ~high_ratio:ratio
  in
  let naive_peak = Sched.Peak.of_step_up model pm naive in
  Printf.printf
    "  run naively with a 20 ms period this peaks at %.2f C - violates 65 C\n"
    naive_peak;
  Printf.printf "  (paper: 79.69 C).  The ratios must come down (Table III),\n";
  Printf.printf "  and oscillating FASTER (m-Oscillating) lets them stay higher:\n\n";

  let ao = Core.Ao.solve platform in
  Printf.printf "Step 4 - AO (Algorithm 2) does all of this automatically:\n";
  Printf.printf "  m = %d oscillations, throughput %.4f, peak %.2f C <= 65 C\n"
    ao.Core.Ao.m ao.Core.Ao.throughput ao.Core.Ao.peak;
  Printf.printf "  improvement over LNS: %+.1f%%  (paper: +45.4%% for its Table III point)\n"
    ((ao.Core.Ao.throughput -. lns.Core.Lns.throughput)
    /. lns.Core.Lns.throughput *. 100.);
  Printf.printf "  improvement over EXS: %+.1f%%\n"
    ((ao.Core.Ao.throughput -. exs.Core.Exs.throughput)
    /. exs.Core.Exs.throughput *. 100.)
