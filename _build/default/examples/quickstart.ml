(* Quickstart: build a temperature-constrained multi-core platform, run
   the paper's AO policy, and inspect the resulting schedule.

     dune exec examples/quickstart.exe

   The flow below is the library's intended API surface:
   1. describe the hardware (a 3x3 grid of 4x4 mm^2 cores);
   2. wrap it in a Platform with a DVFS level set and a T_max;
   3. ask a policy for a schedule;
   4. double-check the schedule against the thermal model. *)

let () =
  (* 1. Hardware: floorplan -> HotSpot-style compact thermal model. *)
  let floorplan =
    Thermal.Floorplan.grid ~rows:3 ~cols:3 ~core_width:4e-3 ~core_height:4e-3
  in
  let model = Thermal.Hotspot.core_level floorplan in
  Printf.printf "thermal model: %d nodes, time constants %s s\n"
    (Thermal.Model.n_nodes model)
    (String.concat ", "
       (Array.to_list
          (Array.map (Printf.sprintf "%.2g") (Thermal.Model.time_constants model))));

  (* 2. The problem instance: two DVFS modes, 60 C peak-temperature cap,
     5 us transition stall. *)
  let platform =
    Core.Platform.make ~levels:(Power.Vf.table_iv 2) ~t_max:60. model
  in
  assert (Core.Platform.feasible platform);

  (* 3. Policies.  LNS and EXS are the baselines; AO is the paper's
     frequency-oscillation algorithm. *)
  let lns = Core.Lns.solve platform in
  let exs = Core.Exs.solve platform in
  let ao = Core.Ao.solve platform in
  Printf.printf "\nLNS throughput: %.4f (peak %.2f C)\n" lns.Core.Lns.throughput
    lns.Core.Lns.peak;
  Printf.printf "EXS throughput: %.4f (peak %.2f C, %d combinations)\n"
    exs.Core.Exs.throughput exs.Core.Exs.peak exs.Core.Exs.evaluated;
  Printf.printf "AO  throughput: %.4f (peak %.2f C, m = %d of %d allowed)\n"
    ao.Core.Ao.throughput ao.Core.Ao.peak ao.Core.Ao.m ao.Core.Ao.m_max;
  Printf.printf "AO improvement over EXS: %+.1f%%\n"
    ((ao.Core.Ao.throughput -. exs.Core.Exs.throughput)
    /. exs.Core.Exs.throughput *. 100.);

  (* 4. Trust but verify: re-evaluate AO's schedule with the dense
     scanner on the full thermal model. *)
  Printf.printf "\nAO mini-period schedule (%.2f ms):\n"
    (Sched.Schedule.period ao.Core.Ao.schedule *. 1e3);
  Format.printf "%a" Sched.Schedule.pp ao.Core.Ao.schedule;
  let verified =
    Sched.Peak.of_any platform.Core.Platform.model platform.Core.Platform.power
      ~samples_per_segment:64 ao.Core.Ao.schedule
  in
  Printf.printf "dense-scan peak of AO's schedule: %.2f C (T_max = %.0f C)\n" verified
    platform.Core.Platform.t_max;

  (* 5. Bonus: render the schedule as an SVG Gantt chart, and see how
     long the chip could sprint at full speed from a cold start. *)
  let svg_path = Filename.concat (Filename.get_temp_dir_name ()) "ao_schedule.svg" in
  Util.Svg_plot.write svg_path
    (Sched.Render.gantt_svg ~title:"AO 9-core schedule" ao.Core.Ao.schedule);
  Printf.printf "schedule rendered to %s\n" svg_path;
  let sprint = Core.Sprint.plan platform in
  Printf.printf "cold-start sprint at 1.3V: %.2fs before hitting T_max (%.2f extra work/core)\n"
    sprint.Core.Sprint.burst_duration sprint.Core.Sprint.sprint_gain
