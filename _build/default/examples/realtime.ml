(* Thermally-feasible scheduling of a periodic real-time task set.

     dune exec examples/realtime.exe

   The paper maximizes abstract throughput; a real-time adopter instead
   has a TASK SET and asks: can this workload run on this chip without
   crossing T_max?  The tasks library answers it with the paper's own
   machinery:

   1. partition tasks onto cores (first-fit decreasing by utilization);
   2. each core's total utilization becomes a net-speed demand;
   3. Core.Demand builds the coolest two-mode m-oscillating schedule
      delivering those demands (Theorems 3/4/5) and checks T_max;
   4. a binary search on workload scaling finds the platform's thermal
      capacity for this task mix. *)

let () =
  let platform = Workload.Configs.platform ~cores:3 ~levels:5 ~t_max:60. in
  let task name wcet period = Tasks.Task.make ~name ~wcet ~period in
  let taskset =
    [
      task "video_decode" 6.0e-3 16.7e-3;
      task "audio_mix" 1.2e-3 5.0e-3;
      task "sensor_fusion" 2.5e-3 10.0e-3;
      task "network_rx" 0.8e-3 4.0e-3;
      task "control_loop" 1.5e-3 2.5e-3;
      task "ui_render" 8.0e-3 33.3e-3;
      task "logging" 0.5e-3 20.0e-3;
      task "crypto" 3.0e-3 12.0e-3;
    ]
  in
  Printf.printf "task set (%d tasks, total utilization %.3f):\n" (List.length taskset)
    (List.fold_left (fun u t -> u +. Tasks.Task.utilization t) 0. taskset);
  List.iter (fun t -> Format.printf "  %a@." Tasks.Task.pp t) taskset;

  match Tasks.Feasibility.schedule_tasks platform taskset with
  | None -> print_endline "partitioning failed: some task exceeds a core's capacity"
  | Some verdict ->
      Printf.printf "\nper-core utilization demands: [%s]\n"
        (String.concat "; "
           (Array.to_list
              (Array.map (Printf.sprintf "%.3f") verdict.Tasks.Feasibility.demands)));
      let r = verdict.Tasks.Feasibility.result in
      Printf.printf "delivered net speeds:         [%s]\n"
        (String.concat "; "
           (Array.to_list (Array.map (Printf.sprintf "%.3f") r.Core.Demand.delivered)));
      Printf.printf "schedule (m = %d of %d): peak %.2f C, margin %.2f C -> %s\n"
        r.Core.Demand.m r.Core.Demand.m_max r.Core.Demand.peak r.Core.Demand.margin
        (if verdict.Tasks.Feasibility.schedulable then "SCHEDULABLE" else "NOT schedulable");

      let factor = Tasks.Feasibility.capacity_factor platform taskset in
      let factor_ffd =
        Tasks.Feasibility.capacity_factor ~strategy:`First_fit platform taskset
      in
      Printf.printf
        "\nthermal capacity: the workload can grow %.2fx before T_max = %.0f C binds\n"
        factor platform.Core.Platform.t_max;
      Printf.printf
        "  (first-fit packing concentrates heat and only reaches %.2fx)\n"
        factor_ffd;
      (* Sanity: just above the capacity it must fail. *)
      let above =
        Tasks.Feasibility.schedule_tasks platform
          (List.map (Tasks.Task.scale (factor *. 1.05)) taskset)
      in
      (match above with
      | Some v ->
          Printf.printf "at %.2fx: peak %.2f C -> %s\n" (factor *. 1.05)
            v.Tasks.Feasibility.result.Core.Demand.peak
            (if v.Tasks.Feasibility.schedulable then "schedulable" else "not schedulable")
      | None -> Printf.printf "at %.2fx: packing fails\n" (factor *. 1.05))
