bin/repro_cli.ml: Arg Cmd Cmdliner Experiments Filename List Printf Sys Term Util Workload
