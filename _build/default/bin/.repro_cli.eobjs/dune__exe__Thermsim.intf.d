bin/thermsim.mli:
