bin/thermsim.ml: Arg Array Cmd Cmdliner Format Fun Linalg Power Printf Random Sched Stdlib String Term Thermal Util Workload
