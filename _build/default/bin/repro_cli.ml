(* fosc-experiments: regenerate any table or figure of the paper from the
   command line, optionally dumping CSV series next to the printed rows.

     fosc-experiments motivation
     fosc-experiments fig3 --step 0.3 --csv-dir out/
     fosc-experiments all *)

open Cmdliner

let svg_dir_arg =
  let doc = "Also render the experiment's figure as SVG into $(docv)." in
  Arg.(value & opt (some string) None & info [ "svg-dir" ] ~docv:"DIR" ~doc)

let csv_dir_arg =
  let doc = "Also write the experiment's data series as CSV files into $(docv)." in
  Arg.(value & opt (some string) None & info [ "csv-dir" ] ~docv:"DIR" ~doc)

let ensure_dir = function
  | None -> None
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      Some dir

let in_dir dir file = Filename.concat dir file

let run_motivation csv_dir =
  ignore (ensure_dir csv_dir);
  Experiments.Exp_motivation.print (Experiments.Exp_motivation.run ())

let run_fig2 csv_dir =
  ignore (ensure_dir csv_dir);
  Experiments.Exp_fig2.print (Experiments.Exp_fig2.run ())

let run_fig3 step csv_dir svg_dir =
  let r = Experiments.Exp_fig3.run ~step () in
  Experiments.Exp_fig3.print r;
  (match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_fig3.to_csv (in_dir dir "fig3_peak_surface.csv") r
  | None -> ());
  match ensure_dir svg_dir with
  | Some dir ->
      let svg =
        Util.Svg_plot.heatmap ~title:"Fig. 3: peak temperature vs phase offsets"
          ~x_label:"x2 (s)" ~y_label:"x3 (s)" r.Experiments.Exp_fig3.peaks
      in
      Util.Svg_plot.write (in_dir dir "fig3.svg") svg
  | None -> ()

let run_fig4 seed csv_dir =
  let r = Experiments.Exp_fig4.run ~seed () in
  Experiments.Exp_fig4.print r;
  match ensure_dir csv_dir with
  | Some dir ->
      Experiments.Exp_fig4.to_csv
        ~warmup_path:(in_dir dir "fig4_warmup.csv")
        ~stable_path:(in_dir dir "fig4_stable.csv")
        r
  | None -> ()

let run_fig5 seed m_max csv_dir svg_dir =
  let r = Experiments.Exp_fig5.run ~seed ~m_max () in
  Experiments.Exp_fig5.print r;
  (match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_fig5.to_csv (in_dir dir "fig5_peak_vs_m.csv") r
  | None -> ());
  match ensure_dir svg_dir with
  | Some dir ->
      let svg =
        Util.Svg_plot.line_chart ~title:"Fig. 5: peak temperature vs m (9 cores)"
          ~x_label:"m" ~y_label:"peak temperature (C)"
          [
            {
              Util.Svg_plot.label = "peak";
              points =
                List.map
                  (fun (m, p) -> (float_of_int m, p))
                  r.Experiments.Exp_fig5.series;
            };
          ]
      in
      Util.Svg_plot.write (in_dir dir "fig5.svg") svg
  | None -> ()

let policy_series rows ~x_of =
  let series name project =
    {
      Util.Svg_plot.label = name;
      points = List.map (fun r -> (x_of r, project r)) rows;
    }
  in
  [
    series "LNS" (fun (r : Experiments.Exp_common.policy_row) -> r.lns);
    series "EXS" (fun (r : Experiments.Exp_common.policy_row) -> r.exs);
    series "AO" (fun (r : Experiments.Exp_common.policy_row) -> r.ao);
    series "PCO" (fun (r : Experiments.Exp_common.policy_row) -> r.pco);
  ]

let run_fig6 t_max csv_dir svg_dir =
  let r = Experiments.Exp_fig6.run ~t_max () in
  Experiments.Exp_fig6.print r;
  (match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_fig6.to_csv (in_dir dir "fig6_throughput.csv") r
  | None -> ());
  match ensure_dir svg_dir with
  | Some dir ->
      (* One panel per core count, throughput vs level count. *)
      List.iter
        (fun cores ->
          let rows =
            List.filter
              (fun (row : Experiments.Exp_common.policy_row) -> row.cores = cores)
              r.Experiments.Exp_fig6.rows
          in
          let svg =
            Util.Svg_plot.line_chart
              ~title:(Printf.sprintf "Fig. 6: throughput vs levels (%d cores)" cores)
              ~x_label:"voltage levels" ~y_label:"throughput"
              (policy_series rows ~x_of:(fun row -> float_of_int row.levels))
          in
          Util.Svg_plot.write (in_dir dir (Printf.sprintf "fig6_%dcores.svg" cores)) svg)
        Workload.Configs.core_counts
  | None -> ()

let run_fig7 csv_dir svg_dir =
  let r = Experiments.Exp_fig7.run () in
  Experiments.Exp_fig7.print r;
  (match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_fig7.to_csv (in_dir dir "fig7_throughput_vs_tmax.csv") r
  | None -> ());
  match ensure_dir svg_dir with
  | Some dir ->
      List.iter
        (fun cores ->
          let rows =
            List.filter
              (fun (row : Experiments.Exp_common.policy_row) -> row.cores = cores)
              r.Experiments.Exp_fig7.rows
          in
          let svg =
            Util.Svg_plot.line_chart
              ~title:(Printf.sprintf "Fig. 7: throughput vs T_max (%d cores)" cores)
              ~x_label:"T_max (C)" ~y_label:"throughput"
              (policy_series rows ~x_of:(fun row -> row.t_max))
          in
          Util.Svg_plot.write (in_dir dir (Printf.sprintf "fig7_%dcores.svg" cores)) svg)
        Workload.Configs.core_counts
  | None -> ()

let run_table5 csv_dir =
  let r = Experiments.Exp_table5.run () in
  Experiments.Exp_table5.print r;
  match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_table5.to_csv (in_dir dir "table5_times.csv") r
  | None -> ()

let run_ablations csv_dir =
  ignore (ensure_dir csv_dir);
  Experiments.Exp_ablations.print (Experiments.Exp_ablations.run ())

let run_sensitivity csv_dir =
  let r = Experiments.Exp_sensitivity.run () in
  Experiments.Exp_sensitivity.print r;
  match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_sensitivity.to_csv (in_dir dir "sensitivity_theorem1.csv") r
  | None -> ()

let run_tasks csv_dir =
  let r = Experiments.Exp_tasks.run () in
  Experiments.Exp_tasks.print r;
  match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_tasks.to_csv (in_dir dir "tasks_capacity.csv") r
  | None -> ()

let run_pareto csv_dir svg_dir =
  let r = Experiments.Exp_pareto.run () in
  Experiments.Exp_pareto.print r;
  (match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_pareto.to_csv (in_dir dir "pareto_frontier.csv") r
  | None -> ());
  match ensure_dir svg_dir with
  | Some dir -> Util.Svg_plot.write (in_dir dir "pareto.svg") (Experiments.Exp_pareto.to_svg r)
  | None -> ()

let run_3d csv_dir =
  let r = Experiments.Exp_3d.run () in
  Experiments.Exp_3d.print r;
  match ensure_dir csv_dir with
  | Some dir -> Experiments.Exp_3d.to_csv (in_dir dir "stacking3d.csv") r
  | None -> ()

let run_everything step seed m_max t_max csv_dir svg_dir =
  run_motivation csv_dir;
  run_fig2 csv_dir;
  run_fig3 step csv_dir svg_dir;
  run_fig4 seed csv_dir;
  run_fig5 seed m_max csv_dir svg_dir;
  run_fig6 t_max csv_dir svg_dir;
  run_fig7 csv_dir svg_dir;
  run_table5 csv_dir;
  run_ablations csv_dir;
  run_sensitivity csv_dir;
  run_tasks csv_dir;
  run_pareto csv_dir svg_dir;
  run_3d csv_dir

let step_arg =
  let doc = "Sweep resolution in seconds for the Fig. 3 phase grid." in
  Arg.(value & opt float 0.6 & info [ "step" ] ~docv:"SECONDS" ~doc)

let seed_arg =
  let doc = "Random seed for the generated schedules." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let m_max_arg =
  let doc = "Largest oscillation count for the Fig. 5 sweep." in
  Arg.(value & opt int 50 & info [ "m-max" ] ~docv:"M" ~doc)

let t_max_arg =
  let doc = "Peak-temperature threshold (degrees C) for the Fig. 6 sweep." in
  Arg.(value & opt float 55. & info [ "t-max" ] ~docv:"CELSIUS" ~doc)

let () =
  let motivation =
    Cmd.v
      (Cmd.info "motivation" ~doc:"Section III example, Tables II/III")
      Term.(const run_motivation $ csv_dir_arg)
  in
  let fig2 =
    Cmd.v
      (Cmd.info "fig2" ~doc:"Fig. 2: single-core oscillation counterexample")
      Term.(const run_fig2 $ csv_dir_arg)
  in
  let fig3 =
    Cmd.v
      (Cmd.info "fig3" ~doc:"Fig. 3: step-up bound over phase-shifted schedules")
      Term.(const run_fig3 $ step_arg $ csv_dir_arg $ svg_dir_arg)
  in
  let fig4 =
    Cmd.v
      (Cmd.info "fig4" ~doc:"Fig. 4: 6-core step-up temperature trace")
      Term.(const run_fig4 $ seed_arg $ csv_dir_arg)
  in
  let fig5 =
    Cmd.v
      (Cmd.info "fig5" ~doc:"Fig. 5: 9-core peak vs oscillation count")
      Term.(const run_fig5 $ seed_arg $ m_max_arg $ csv_dir_arg $ svg_dir_arg)
  in
  let fig6 =
    Cmd.v
      (Cmd.info "fig6" ~doc:"Fig. 6: throughput across cores x levels")
      Term.(const run_fig6 $ t_max_arg $ csv_dir_arg $ svg_dir_arg)
  in
  let fig7 =
    Cmd.v
      (Cmd.info "fig7" ~doc:"Fig. 7: throughput vs temperature threshold")
      Term.(const run_fig7 $ csv_dir_arg $ svg_dir_arg)
  in
  let table5 =
    Cmd.v
      (Cmd.info "table5" ~doc:"Table V: computation-time comparison")
      Term.(const run_table5 $ csv_dir_arg)
  in
  let ablations =
    Cmd.v
      (Cmd.info "ablations" ~doc:"Design-choice ablations (DESIGN.md)")
      Term.(const run_ablations $ csv_dir_arg)
  in
  let sensitivity =
    Cmd.v
      (Cmd.info "sensitivity" ~doc:"Theorem-1 exceedance vs coupling strength")
      Term.(const run_sensitivity $ csv_dir_arg)
  in
  let tasks =
    Cmd.v
      (Cmd.info "tasks" ~doc:"Task-level thermal capacity by partitioning strategy")
      Term.(const run_tasks $ csv_dir_arg)
  in
  let pareto =
    Cmd.v
      (Cmd.info "pareto" ~doc:"Throughput/energy frontier under AO")
      Term.(const run_pareto $ csv_dir_arg $ svg_dir_arg)
  in
  let stacking3d =
    Cmd.v
      (Cmd.info "stacking3d" ~doc:"Planar vs 3D-stacked platform comparison")
      Term.(const run_3d $ csv_dir_arg)
  in
  let all =
    Cmd.v
      (Cmd.info "all" ~doc:"Every experiment in paper order")
      Term.(
        const run_everything $ step_arg $ seed_arg $ m_max_arg $ t_max_arg
        $ csv_dir_arg $ svg_dir_arg)
  in
  let info =
    Cmd.info "fosc-experiments" ~version:"1.0.0"
      ~doc:
        "Reproduce the tables and figures of 'Performance Maximization via \
         Frequency Oscillation on Temperature Constrained Multi-core Processors' \
         (ICPP 2016)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ motivation; fig2; fig3; fig4; fig5; fig6; fig7; table5; ablations; sensitivity; tasks; pareto; stacking3d; all ]))
